// serve::Server — the multi-tenant dbid daemon core.
//
// A long-running server on a Unix-domain socket speaking the framed
// protocol of serve/protocol.hpp. Every connection belongs to one
// tenant (fixed by its hello frame); tenants keep their Session-style
// state — scheme, geometry, kernel pin and the threaded per-(lane,
// group) BusState history — alive across requests and reconnects, so
// a stream chunked over many small requests encodes bit-identically
// to one offline `dbitool record` pass.
//
// Scheduling: connection reader threads only parse and admit; all
// engine work runs on one scheduler thread that drains the per-tenant
// admission queues with deficit round-robin (quantum in bursts), so a
// hot tenant cannot starve its neighbours, and coalesces consecutive
// small encode requests of one tenant into a single engine-sized
// StreamEncoder chunk over the shared ShardPool. Queues are bounded:
// when a tenant's queue is full, new requests are rejected right at
// admission with a typed kBusy frame (the engine never sees them).
//
// Observability reuses obs::Registry: per-tenant request / busy /
// burst counters, queue-depth and request-latency histograms
// (p50/p90/p99 via the log2 buckets), the dbi_build_info gauge, and a
// kStats frame returning Snapshot::to_prometheus() — the socket twin
// of a GET /metrics endpoint.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/geometry.hpp"
#include "engine/batch_decoder.hpp"
#include "engine/batch_encoder.hpp"
#include "engine/shard_pool.hpp"
#include "engine/stream_encoder.hpp"
#include "obs/observer.hpp"
#include "serve/protocol.hpp"

namespace dbi::serve {

struct ServerOptions {
  std::string socket_path;
  /// Shared ShardPool workers for the engine calls; 0 or 1 = serial.
  int workers = 0;
  /// Per-tenant admission bound, in queued requests; a full queue
  /// rejects with kBusy.
  std::size_t max_queue_requests = 64;
  /// Coalescing cap: one engine call handles at most this many bursts.
  std::size_t max_batch_bursts = 8192;
  /// Deficit-round-robin quantum, in bursts per tenant per round.
  std::int64_t quantum_bursts = 2048;
  /// Registry slab cells (per-tenant series cost ~140 cells each).
  std::size_t max_cells = 65536;
  /// SO_SNDTIMEO on accepted sockets: a response write that cannot make
  /// progress for this long (the client stopped reading) drops the
  /// connection, so a slow consumer costs the scheduler at most one
  /// timeout instead of pinning it forever. 0 disables the timeout.
  std::chrono::milliseconds send_timeout{5000};
  /// Test hook: stall this long before each scheduled batch, so soak
  /// tests can force queueing and observe backpressure deterministically.
  std::chrono::nanoseconds batch_delay{0};
  /// Fault hook for kVerify requests, the daemon-side twin of
  /// SessionSpec::fault_injector: called between encode and decode
  /// with the materialised wire bytes and masks (both mutable), keyed
  /// by tenant so soak tests can corrupt a subset of tenants.
  std::function<void(std::string_view tenant, std::int64_t first_burst,
                     std::span<std::uint8_t> tx,
                     std::span<std::uint64_t> masks)>
      fault_injector;

  void validate() const;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  ///< calls stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket, spawns the accept and scheduler threads.
  /// Throws std::system_error when the path cannot be bound.
  void start();

  /// Asks the server to stop (idempotent, async-signal-unsafe but
  /// thread-safe): admissions close, stop() / wait_stop_requested()
  /// observers wake. Also triggered by a client kShutdown frame.
  void request_stop();

  /// True once request_stop() ran; waits up to `d` for it.
  bool wait_stop_requested(std::chrono::milliseconds d);

  /// Graceful drain: stops admissions, finishes every already-admitted
  /// request (responses are written), joins all threads, unlinks the
  /// socket. Idempotent.
  void stop();

  [[nodiscard]] bool running() const { return started_ && !stopped_; }
  [[nodiscard]] const ServerOptions& options() const { return options_; }
  [[nodiscard]] obs::Observer& observer() { return *obs_; }
  [[nodiscard]] obs::Snapshot metrics() const { return obs_->snapshot(); }

 private:
  struct Connection;
  struct Request;
  struct Tenant;

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  /// Joins reader threads whose connections have closed (they park
  /// their own handles in finished_readers_ on exit).
  void reap_readers();
  void scheduler_loop();
  std::unique_ptr<Tenant> make_tenant(const HelloRequest& h,
                                      const engine::KernelVariant* kernel);
  /// One parsed request frame from `conn`; `tenant` is the
  /// connection's hello-bound tenant (null before hello).
  void handle_frame(const std::shared_ptr<Connection>& conn, Tenant*& tenant,
                    Frame& frame);
  Tenant* hello(const std::shared_ptr<Connection>& conn, const Frame& frame);
  void admit(const std::shared_ptr<Connection>& conn, Tenant& tenant,
             Frame& frame);
  void process_batch(Tenant& tenant, std::vector<Request>& batch);
  void process_encode_run(Tenant& tenant, std::span<Request> run,
                          std::size_t total_bursts);
  void process_decode(Tenant& tenant, Request& rq);
  void process_verify(Tenant& tenant, Request& rq);
  void respond(Tenant& tenant, Request& rq, Frame&& frame);
  void fail_batch(Tenant& tenant, std::span<Request> run, StatusCode status,
                  std::string_view message);

  ServerOptions options_;
  std::unique_ptr<obs::Observer> obs_;
  std::unique_ptr<engine::ShardPool> pool_;  // null = serial engine calls

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::thread scheduler_thread_;

  mutable std::mutex mu_;  // tenants_, queues, active_, conns_, flags
  std::condition_variable sched_cv_;  // scheduler wakeups
  std::condition_variable stop_cv_;   // request_stop() observers
  std::unordered_map<std::string, std::unique_ptr<Tenant>> tenants_;
  std::deque<Tenant*> active_;  // tenants with queued work, RR order
  std::vector<std::shared_ptr<Connection>> conns_;  ///< live connections only
  std::unordered_map<Connection*, std::thread> reader_threads_;
  std::vector<std::thread> finished_readers_;  ///< exited, awaiting join
  bool started_ = false;
  bool stop_requested_ = false;  // admissions closed
  bool drain_ = false;           // scheduler exits once queues empty
  bool stopped_ = false;

  // Fleet-wide metric handles.
  obs::Counter connections_, batches_;
  obs::Histogram batch_bursts_;
  obs::Gauge tenants_gauge_;
};

/// dbid main body: runs a Server on `options` until SIGTERM/SIGINT or
/// a client kShutdown frame, then drains. Returns a process exit code.
/// `ready_fd` (when >= 0) receives one status byte once startup
/// resolves — 0 when the socket is bound (the readiness handshake
/// `dbitool serve --fork` and the smoke tests wait on), or 1 followed
/// by the failure reason when startup threw (stderr may be /dev/null
/// by then, so the pipe is the only channel back to the parent).
int run_daemon(const ServerOptions& options, int ready_fd = -1);

}  // namespace dbi::serve
