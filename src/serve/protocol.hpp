// serve::protocol — the framed binary wire format of the dbid daemon.
//
// Transport is a SOCK_STREAM Unix-domain socket carrying
// length-prefixed frames. Like the trace format, the protocol is
// versioned and little-endian with a fixed magic, so a stale client
// fails fast with a typed error instead of desynchronising:
//
//   offset  size  field
//        0     4  magic "DBIS"
//        4     1  protocol version (kProtoVersion)
//        5     1  frame type (FrameType)
//        6     2  status (StatusCode; 0 on requests)
//        8     4  seq — echoed verbatim in the response, which is what
//                 lets clients pipeline several requests per connection
//       12     4  payload length in bytes
//       16     …  payload (layout per frame type, see the structs)
//
// A connection speaks for exactly one tenant: the first frame must be
// kHello, which names the tenant and fixes its geometry / scheme /
// lanes / kernel for the life of the tenant (reconnecting with the
// same name resumes the existing session state; reconnecting with a
// conflicting spec is kBadState). Every request frame gets exactly one
// response frame with the same seq: the matching *Ack on success, or
// kBusy / kError with a StatusCode otherwise.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/geometry.hpp"
#include "core/encoder.hpp"

namespace dbi::serve {

inline constexpr std::uint32_t kMagic = 0x53494244;  // "DBIS" little-endian
inline constexpr std::uint8_t kProtoVersion = 1;
/// Hard cap on a frame payload; anything larger is a malformed frame
/// (protects the server from hostile or desynchronised lengths).
inline constexpr std::uint32_t kMaxPayload = 64u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kHelloAck,
  kEncode,
  kEncodeAck,
  kDecode,
  kDecodeAck,
  kVerify,
  kVerifyAck,
  kStats,
  kStatsAck,
  kShutdown,
  kShutdownAck,
  kBusy,   ///< admission queue bound hit — retry later (seq of the request)
  kError,  ///< typed failure; payload is a human-readable message
};

enum class StatusCode : std::uint16_t {
  kOk = 0,
  kBusy = 1,          ///< per-tenant queue full
  kBadFrame = 2,      ///< malformed frame / version or magic mismatch
  kBadState = 3,      ///< hello conflict, or request before hello
  kShuttingDown = 4,  ///< server is draining; no new admissions
  kInternal = 5,      ///< engine threw; message has the what()
};

/// Malformed wire data (bad magic / version / truncated payloads).
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One parsed frame. `payload` layouts are defined by the structs
/// below; requests carry status kOk.
struct Frame {
  FrameType type = FrameType::kError;
  StatusCode status = StatusCode::kOk;
  std::uint32_t seq = 0;
  std::vector<std::uint8_t> payload;
};

// --- payload codecs ---------------------------------------------------
//
// Each struct is one frame type's payload with to_payload() /
// parse(payload) round trips; parse throws ProtocolError on truncated
// or out-of-range fields.

/// kHello: names the tenant and pins its session spec.
struct HelloRequest {
  std::string tenant;
  Scheme scheme = Scheme::kAc;
  Geometry geometry{};
  std::uint16_t lanes = 1;
  bool reset_state_per_burst = false;
  std::string kernel;  ///< "" / "auto" or a registry name

  [[nodiscard]] std::vector<std::uint8_t> to_payload() const;
  [[nodiscard]] static HelloRequest parse(std::span<const std::uint8_t> p);
};

/// kHelloAck: the server introduces itself.
struct HelloAck {
  std::string build;               ///< dbi::build_version() of the server
  std::uint32_t max_queue_requests = 0;  ///< this tenant's admission bound

  [[nodiscard]] std::vector<std::uint8_t> to_payload() const;
  [[nodiscard]] static HelloAck parse(std::span<const std::uint8_t> p);
};

/// kEncode / kVerify: packed payload bursts in the trace layout.
struct EncodeRequest {
  /// EncodeAck should carry the transmitted stream, not just the masks.
  static constexpr std::uint32_t kWantTx = 1u << 0;

  std::uint32_t flags = 0;
  std::uint32_t burst_count = 0;
  std::span<const std::uint8_t> payload;  ///< burst_count * bytes_per_burst

  [[nodiscard]] std::vector<std::uint8_t> to_payload() const;
  [[nodiscard]] static EncodeRequest parse(std::span<const std::uint8_t> p);
};

/// kEncodeAck: per-(burst, group) inversion masks (+ tx with kWantTx).
struct EncodeAck {
  std::uint32_t burst_count = 0;
  std::uint64_t zeros = 0;
  std::uint64_t transitions = 0;
  std::vector<std::uint64_t> masks;  ///< burst-major, group-minor
  std::vector<std::uint8_t> tx;      ///< empty unless kWantTx

  [[nodiscard]] std::vector<std::uint8_t> to_payload() const;
  [[nodiscard]] static EncodeAck parse(std::span<const std::uint8_t> p);
};

/// kDecode: transmitted stream + masks in, payload out.
struct DecodeRequest {
  std::uint32_t burst_count = 0;
  std::span<const std::uint64_t> masks;
  std::span<const std::uint8_t> tx;

  [[nodiscard]] std::vector<std::uint8_t> to_payload() const;
  /// The parsed views alias `p`; keep the payload alive while using them.
  [[nodiscard]] static DecodeRequest parse(
      std::span<const std::uint8_t> p, std::vector<std::uint64_t>& mask_store);
};

/// kDecodeAck: the recovered payload bytes, verbatim.

/// kVerifyAck: server-side round trip verdict for a kVerify payload.
struct VerifyAck {
  bool ok = false;
  std::uint32_t burst_count = 0;
  std::uint64_t mismatched_bytes = 0;
  std::uint64_t zeros = 0;        ///< encode-side stats, like EncodeAck
  std::uint64_t transitions = 0;

  [[nodiscard]] std::vector<std::uint8_t> to_payload() const;
  [[nodiscard]] static VerifyAck parse(std::span<const std::uint8_t> p);
};

/// kBusy: queue depth / bound at rejection time.
struct BusyInfo {
  std::uint32_t depth = 0;
  std::uint32_t limit = 0;

  [[nodiscard]] std::vector<std::uint8_t> to_payload() const;
  [[nodiscard]] static BusyInfo parse(std::span<const std::uint8_t> p);
};

// --- frame I/O --------------------------------------------------------

/// Blocking full-frame read. Returns false on clean EOF at a frame
/// boundary; throws ProtocolError on malformed headers / short reads
/// and std::system_error on socket errors.
[[nodiscard]] bool read_frame(int fd, Frame& out);

/// Blocking full-frame write (handles partial writes / EINTR).
void write_frame(int fd, const Frame& frame);

/// Scatter variant: writes one frame whose payload is `prefix` followed
/// by `body`, without concatenating them first (header + both spans go
/// out in a single sendmsg). This is the zero-copy send path for the
/// large data frames — the client's encode/verify requests put the
/// fixed fields in `prefix` and the caller-owned burst payload in
/// `body`.
void write_frame_scatter(int fd, FrameType type, StatusCode status,
                         std::uint32_t seq,
                         std::span<const std::uint8_t> prefix,
                         std::span<const std::uint8_t> body);

/// Convenience constructors.
[[nodiscard]] Frame make_frame(FrameType type, std::uint32_t seq,
                               std::vector<std::uint8_t> payload = {},
                               StatusCode status = StatusCode::kOk);
[[nodiscard]] Frame make_error(std::uint32_t seq, StatusCode status,
                               std::string_view message);

[[nodiscard]] std::string_view status_name(StatusCode s);

}  // namespace dbi::serve
