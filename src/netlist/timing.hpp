// Static timing analysis over the levelised netlist: longest
// combinational path from any source (primary input or register
// output) to any sink (primary output or register D input).
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/tech.hpp"

namespace dbi::netlist {

struct TimingReport {
  /// Longest source-to-sink combinational delay [s].
  double critical_path_s = 0.0;
  /// Gate chain realising the critical path, source first.
  std::vector<NetId> critical_path;
  /// Combinational logic depth (gates) along the critical path.
  [[nodiscard]] int depth() const {
    return static_cast<int>(critical_path.size());
  }
};

[[nodiscard]] TimingReport analyze_timing(const Netlist& nl,
                                          const TechnologyModel& tech);

/// Achievable clock frequency when the combinational cloud is retimed
/// into `pipeline_stages` balanced stages (the paper: "added 8 pipeline
/// stages ... and used the retime option"):
///   f = 1 / (critical_path / stages + clk_to_q + setup).
[[nodiscard]] double pipelined_fmax_hz(const TimingReport& timing,
                                       const TechnologyModel& tech,
                                       int pipeline_stages);

}  // namespace dbi::netlist
