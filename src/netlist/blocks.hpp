// Combinational macro blocks: the arithmetic building blocks the
// encoder architectures of Fig. 5 are assembled from. All factories
// perform constant folding (a XOR with a tied-low input emits no gate,
// a full adder with a constant operand degenerates to a half adder,
// ...) so the produced netlists stay close to what a synthesis tool
// would map — which keeps the Table I area/power comparison honest.
//
// Buses are little-endian vectors of nets: bus[0] is the LSB.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "netlist/netlist.hpp"

namespace dbi::netlist {

using Bus = std::vector<NetId>;

/// `bits` fresh primary inputs named prefix[0..bits).
[[nodiscard]] Bus make_input_bus(Netlist& nl, const std::string& prefix,
                                 int bits);

/// Constant bus holding `value` (LSB first).
[[nodiscard]] Bus make_const_bus(Netlist& nl, std::uint64_t value, int bits);

void mark_output_bus(Netlist& nl, const Bus& bus, const std::string& prefix);

/// True (and sets `value`) when `net` is driven by a constant cell.
[[nodiscard]] bool net_is_const(const Netlist& nl, NetId net, bool& value);

// Constant-folding gate factories: return an existing net where the
// boolean function degenerates (e.g. xor_fold(a, const0) == a).
[[nodiscard]] NetId inv_fold(Netlist& nl, NetId a);
[[nodiscard]] NetId and_fold(Netlist& nl, NetId a, NetId b);
[[nodiscard]] NetId or_fold(Netlist& nl, NetId a, NetId b);
[[nodiscard]] NetId xor_fold(Netlist& nl, NetId a, NetId b);
[[nodiscard]] NetId mux_fold(Netlist& nl, NetId a, NetId b, NetId sel);

/// {sum, carry} = a + b.
[[nodiscard]] std::pair<NetId, NetId> half_adder(Netlist& nl, NetId a,
                                                 NetId b);
/// {sum, carry} = a + b + cin.
[[nodiscard]] std::pair<NetId, NetId> full_adder(Netlist& nl, NetId a,
                                                 NetId b, NetId cin);

/// Ripple-carry a + b; result is max(|a|, |b|) + 1 bits wide (carry
/// out kept). Operands of different widths are zero-extended.
[[nodiscard]] Bus ripple_add(Netlist& nl, const Bus& a, const Bus& b);

/// a + k (constant folded through the carry chain).
[[nodiscard]] Bus add_const(Netlist& nl, const Bus& a, std::uint64_t k);

/// k - a for a <= k guaranteed by construction (e.g. 9 - popcount).
/// Result width = width of k. Computed as k + ~a + 1 with folding.
[[nodiscard]] Bus const_minus(Netlist& nl, std::uint64_t k, const Bus& a,
                              int result_bits);

/// Population count of `bits` as a ceil(log2(n+1))-bit bus.
[[nodiscard]] Bus popcount(Netlist& nl, const Bus& bits);

/// Unsigned a < b (borrow out of a - b). Widths may differ.
[[nodiscard]] NetId less_than(Netlist& nl, const Bus& a, const Bus& b);

/// Unsigned a < k.
[[nodiscard]] NetId less_than_const(Netlist& nl, const Bus& a,
                                    std::uint64_t k);

/// Bit-wise select: sel ? b : a (widths must match).
[[nodiscard]] Bus mux_bus(Netlist& nl, const Bus& a, const Bus& b, NetId sel);

/// Bit-wise XOR (widths must match).
[[nodiscard]] Bus xor_bus(Netlist& nl, const Bus& a, const Bus& b);

/// XOR every bit with one control net (conditional inversion stage).
[[nodiscard]] Bus xor_with(Netlist& nl, const Bus& a, NetId control);

[[nodiscard]] Bus zero_extend(Netlist& nl, Bus bus, int bits);

/// value * coeff as shift-add partial products
/// (|value| + |coeff| bits wide).
[[nodiscard]] Bus multiply(Netlist& nl, const Bus& value, const Bus& coeff);

/// One rank of D flip-flops capturing `bus`.
[[nodiscard]] Bus register_bus(Netlist& nl, const Bus& bus);

/// Reads a bus value from a simulator-style bit getter in tests and the
/// hardware wrapper: bit i of the result is get(bus[i]).
template <typename GetBit>
[[nodiscard]] std::uint64_t bus_value(const Bus& bus, GetBit&& get) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.size(); ++i)
    if (get(bus[i])) v |= std::uint64_t{1} << i;
  return v;
}

}  // namespace dbi::netlist
