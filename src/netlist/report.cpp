#include "netlist/report.hpp"

#include <stdexcept>

namespace dbi::netlist {

SynthesisReport synthesize(const std::string& design_name, const Netlist& nl,
                           const TechnologyModel& tech,
                           const Simulator& activity,
                           const PipelineSpec& pipeline) {
  if (pipeline.stages < 1)
    throw std::invalid_argument("synthesize: pipeline stages < 1");
  if (pipeline.merge_factor <= 0.0 || pipeline.merge_factor > 1.0)
    throw std::invalid_argument("synthesize: merge_factor not in (0,1]");

  SynthesisReport r;
  r.design = design_name;
  r.cells = nl.physical_gates();

  // Combinational cells.
  const auto histogram = nl.kind_histogram();
  for (std::size_t k = 0; k < histogram.size(); ++k) {
    const auto kind = static_cast<GateKind>(k);
    if (!is_physical(kind)) continue;
    const CellParams& cell = tech.cell(kind);
    const auto n = static_cast<double>(histogram[k]);
    r.area_um2 += n * cell.area_um2;
    r.static_power_w += n * cell.leakage_w;
  }

  // Dynamic energy from simulated switching activity.
  const std::int64_t cycles = activity.cycles();
  if (cycles > 1) {
    const auto& toggles = activity.toggle_counts();
    double energy = 0.0;
    for (std::size_t k = 0; k < toggles.size(); ++k) {
      const auto kind = static_cast<GateKind>(k);
      if (!is_physical(kind)) continue;
      energy += static_cast<double>(toggles[k]) *
                tech.cell(kind).toggle_energy_j;
    }
    r.dyn_energy_per_cycle_j = energy / static_cast<double>(cycles - 1);
  }

  // Retimed pipeline registers: (stages - 1) internal ranks of
  // merge_factor * cut_bits flip-flops. Modelled registers are assumed
  // to toggle with ~0.5 activity (typical for data paths) and pay clock
  // energy every cycle.
  const int cut =
      pipeline.cut_bits > 0 ? pipeline.cut_bits
                            : static_cast<int>(nl.outputs().size());
  const double internal_ranks = static_cast<double>(pipeline.stages - 1);
  const double reg_bits =
      internal_ranks * pipeline.merge_factor * static_cast<double>(cut);
  r.register_bits = static_cast<std::size_t>(reg_bits);
  const CellParams& dff = tech.cell(GateKind::kDff);
  r.area_um2 += reg_bits * dff.area_um2;
  r.static_power_w += reg_bits * dff.leakage_w;
  r.cells += r.register_bits;
  r.dyn_energy_per_cycle_j +=
      reg_bits * (tech.dff_clock_energy_j() + 0.5 * dff.toggle_energy_j);

  const TimingReport timing = analyze_timing(nl, tech);
  r.critical_path_s = timing.critical_path_s;
  r.fmax_hz = pipelined_fmax_hz(timing, tech, pipeline.stages);
  return r;
}

}  // namespace dbi::netlist
