// Levelised two-value netlist simulator with switching-activity
// accounting. Zero-delay semantics: each eval() settles the
// combinational logic in topological order; accumulate() then compares
// the settled state against the previous cycle's snapshot and charges
// one toggle per changed gate output (glitches are not modelled — the
// technology model's per-toggle energy is calibrated as an average
// including typical glitching, as CACTI-style estimators do).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "netlist/blocks.hpp"
#include "netlist/netlist.hpp"

namespace dbi::netlist {

class Simulator {
 public:
  explicit Simulator(const Netlist& nl);

  /// Drives a primary input (must be a kInput gate).
  void set_input(NetId input, bool value);
  /// Drives a whole input bus, bit i = (value >> i) & 1.
  void set_input_bus(const Bus& bus, std::uint64_t value);

  /// Settles all combinational logic. DFFs output their stored state.
  void eval();

  /// Latches every DFF from its settled D input, then re-settles.
  void clock();

  /// Ends one activity cycle: counts per-kind output toggles relative
  /// to the previous accumulate() snapshot.
  void accumulate();

  /// Settled value of a net (valid after eval()).
  [[nodiscard]] bool value(NetId net) const;
  [[nodiscard]] std::uint64_t bus(const Bus& b) const;

  // ---------------------------------------------------- fault injection
  /// Forces the output of `gate` to `value` during eval() — a stuck-at
  /// fault. Used by the robustness study behind the paper's remark
  /// that rare wrong encoding decisions are harmless (Section II).
  void inject_stuck_at(NetId gate, bool value);
  void clear_faults();

  // ------------------------------------------------ switching activity
  [[nodiscard]] std::int64_t cycles() const { return cycles_; }
  [[nodiscard]] const std::array<std::int64_t, kGateKindCount>&
  toggle_counts() const {
    return toggles_;
  }
  /// Mean output toggles per cycle across all physical gates.
  [[nodiscard]] double mean_toggles_per_cycle() const;
  void reset_activity();

 private:
  const Netlist& nl_;
  std::vector<std::uint8_t> values_;
  std::vector<std::uint8_t> dff_state_;   // indexed like values_
  std::vector<std::uint8_t> snapshot_;
  std::vector<std::int8_t> faults_;       // -1 none, else stuck value
  std::array<std::int64_t, kGateKindCount> toggles_{};
  std::int64_t cycles_ = 0;
  bool has_snapshot_ = false;
};

}  // namespace dbi::netlist
