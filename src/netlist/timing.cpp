#include "netlist/timing.hpp"

#include <algorithm>
#include <stdexcept>

namespace dbi::netlist {

TimingReport analyze_timing(const Netlist& nl, const TechnologyModel& tech) {
  TimingReport report;
  if (nl.size() == 0) return report;

  // arrival[g]: time the output of g settles. Sources settle at 0
  // (inputs/constants) or clk-to-q (registers). The DFF D pin is a
  // sink; its fanin arrival is examined directly below.
  std::vector<double> arrival(nl.size(), 0.0);
  std::vector<NetId> from(nl.size(), kNoNet);
  for (NetId id : nl.levelize()) {
    const Gate& g = nl.gate(id);
    switch (g.kind) {
      case GateKind::kInput:
      case GateKind::kConst0:
      case GateKind::kConst1:
        arrival[id] = 0.0;
        continue;
      case GateKind::kDff:
        arrival[id] = tech.dff_clk_to_q_s();
        continue;
      default:
        break;
    }
    double latest = 0.0;
    NetId latest_src = kNoNet;
    for (int i = 0; i < fanin_count(g.kind); ++i) {
      const NetId src = g.in[static_cast<std::size_t>(i)];
      if (arrival[src] >= latest) {
        latest = arrival[src];
        latest_src = src;
      }
    }
    arrival[id] = latest + tech.cell(g.kind).delay_s;
    from[id] = latest_src;
  }

  // Sinks: primary outputs and register D inputs (plus setup).
  double worst = 0.0;
  NetId worst_end = kNoNet;
  for (const Port& out : nl.outputs()) {
    if (arrival[out.net] >= worst) {
      worst = arrival[out.net];
      worst_end = out.net;
    }
  }
  for (NetId dff : nl.dffs()) {
    const NetId d = nl.gate(dff).in[0];
    const double t = arrival[d] + tech.dff_setup_s();
    if (t >= worst) {
      worst = t;
      worst_end = d;
    }
  }

  report.critical_path_s = worst;
  for (NetId id = worst_end; id != kNoNet; id = from[id])
    report.critical_path.push_back(id);
  std::reverse(report.critical_path.begin(), report.critical_path.end());
  return report;
}

double pipelined_fmax_hz(const TimingReport& timing,
                         const TechnologyModel& tech, int pipeline_stages) {
  if (pipeline_stages < 1)
    throw std::invalid_argument("pipelined_fmax_hz: stages < 1");
  const double period =
      timing.critical_path_s / pipeline_stages + tech.dff_clk_to_q_s() +
      tech.dff_setup_s();
  return period > 0.0 ? 1.0 / period : 0.0;
}

}  // namespace dbi::netlist
