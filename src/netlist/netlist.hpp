// Structural netlist: a DAG of single-output gates, identified by the
// index of their driving gate (NetId). This substitutes for the
// paper's VHDL + Synopsys flow: designs are built programmatically
// (see blocks.hpp and src/hw), then simulated, timed and "synthesised"
// into area/power reports.
//
// Sequential elements: kDff gates latch their D input on clock(); their
// feedback fanin may be connected after creation via set_dff_input, so
// state machines with cycles through registers are expressible while
// the combinational part must stay acyclic (checked by levelize()).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "netlist/gate.hpp"

namespace dbi::netlist {

using NetId = std::uint32_t;
inline constexpr NetId kNoNet = ~NetId{0};

struct Gate {
  GateKind kind = GateKind::kConst0;
  std::array<NetId, 3> in = {kNoNet, kNoNet, kNoNet};
};

/// A named port (primary input or output) of the design.
struct Port {
  std::string name;
  NetId net = kNoNet;
};

class Netlist {
 public:
  // ------------------------------------------------------- construction
  NetId add_input(std::string name);
  NetId add_const(bool value);
  /// Adds a gate; fanins must already exist (except DFF feedback).
  NetId add_gate(GateKind kind, NetId a = kNoNet, NetId b = kNoNet,
                 NetId c = kNoNet);
  /// Adds a D flip-flop; `d` may be kNoNet and connected later.
  NetId add_dff(NetId d = kNoNet);
  void set_dff_input(NetId dff, NetId d);
  void mark_output(NetId net, std::string name);

  // shorthand combinators used heavily by blocks.cpp
  NetId buf(NetId a) { return add_gate(GateKind::kBuf, a); }
  NetId inv(NetId a) { return add_gate(GateKind::kInv, a); }
  NetId and2(NetId a, NetId b) { return add_gate(GateKind::kAnd2, a, b); }
  NetId nand2(NetId a, NetId b) { return add_gate(GateKind::kNand2, a, b); }
  NetId or2(NetId a, NetId b) { return add_gate(GateKind::kOr2, a, b); }
  NetId nor2(NetId a, NetId b) { return add_gate(GateKind::kNor2, a, b); }
  NetId xor2(NetId a, NetId b) { return add_gate(GateKind::kXor2, a, b); }
  NetId xnor2(NetId a, NetId b) { return add_gate(GateKind::kXnor2, a, b); }
  /// sel ? b : a
  NetId mux2(NetId a, NetId b, NetId sel) {
    return add_gate(GateKind::kMux2, a, b, sel);
  }

  // ------------------------------------------------------------- access
  [[nodiscard]] std::size_t size() const { return gates_.size(); }
  [[nodiscard]] const Gate& gate(NetId id) const { return gates_.at(id); }
  [[nodiscard]] const std::vector<Port>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<Port>& outputs() const { return outputs_; }
  [[nodiscard]] const std::vector<NetId>& dffs() const { return dffs_; }

  /// Gate count per kind (physical cells only have meaning for area).
  [[nodiscard]] std::array<std::size_t, kGateKindCount> kind_histogram()
      const;
  /// Number of area-occupying cells.
  [[nodiscard]] std::size_t physical_gates() const;

  /// Topological order of all gates: inputs/constants/DFFs first (their
  /// outputs are sources), then combinational gates in dependency
  /// order. Throws std::logic_error on a combinational cycle or a
  /// dangling fanin. The order is cached until the netlist changes.
  [[nodiscard]] const std::vector<NetId>& levelize() const;

 private:
  NetId add_gate_unchecked(GateKind kind, std::array<NetId, 3> in);

  std::vector<Gate> gates_;
  std::vector<Port> inputs_;
  std::vector<Port> outputs_;
  std::vector<NetId> dffs_;
  mutable std::vector<NetId> topo_;  // cache; cleared on mutation
};

}  // namespace dbi::netlist
