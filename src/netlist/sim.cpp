#include "netlist/sim.hpp"

#include <stdexcept>

namespace dbi::netlist {

Simulator::Simulator(const Netlist& nl) : nl_(nl) {
  values_.assign(nl_.size(), 0);
  dff_state_.assign(nl_.size(), 0);
  snapshot_.assign(nl_.size(), 0);
  faults_.assign(nl_.size(), -1);
  (void)nl_.levelize();  // validate acyclicity up front
}

void Simulator::set_input(NetId input, bool value) {
  if (input >= nl_.size() || nl_.gate(input).kind != GateKind::kInput)
    throw std::invalid_argument("Simulator::set_input: not an input");
  values_[input] = value ? 1 : 0;
}

void Simulator::set_input_bus(const Bus& bus, std::uint64_t value) {
  for (std::size_t i = 0; i < bus.size(); ++i)
    set_input(bus[i], (value >> i) & 1);
}

void Simulator::eval() {
  for (NetId id : nl_.levelize()) {
    const Gate& g = nl_.gate(id);
    const auto in = [&](int i) -> bool {
      return values_[g.in[static_cast<std::size_t>(i)]] != 0;
    };
    bool v = false;
    switch (g.kind) {
      case GateKind::kInput:
        continue;  // externally driven
      case GateKind::kConst0:
        v = false;
        break;
      case GateKind::kConst1:
        v = true;
        break;
      case GateKind::kBuf:
        v = in(0);
        break;
      case GateKind::kInv:
        v = !in(0);
        break;
      case GateKind::kAnd2:
        v = in(0) && in(1);
        break;
      case GateKind::kNand2:
        v = !(in(0) && in(1));
        break;
      case GateKind::kOr2:
        v = in(0) || in(1);
        break;
      case GateKind::kNor2:
        v = !(in(0) || in(1));
        break;
      case GateKind::kXor2:
        v = in(0) != in(1);
        break;
      case GateKind::kXnor2:
        v = in(0) == in(1);
        break;
      case GateKind::kMux2:
        v = in(2) ? in(1) : in(0);
        break;
      case GateKind::kDff:
        v = dff_state_[id] != 0;
        break;
    }
    if (faults_[id] >= 0) v = faults_[id] != 0;
    values_[id] = v ? 1 : 0;
  }
}

void Simulator::inject_stuck_at(NetId gate, bool value) {
  if (gate >= nl_.size())
    throw std::invalid_argument("Simulator::inject_stuck_at: bad net");
  faults_[gate] = value ? 1 : 0;
}

void Simulator::clear_faults() { faults_.assign(nl_.size(), -1); }

void Simulator::clock() {
  for (NetId id : nl_.dffs())
    dff_state_[id] = values_[nl_.gate(id).in[0]];
  eval();
}

void Simulator::accumulate() {
  if (has_snapshot_) {
    for (NetId id = 0; id < nl_.size(); ++id) {
      if (values_[id] != snapshot_[id])
        ++toggles_[static_cast<std::size_t>(nl_.gate(id).kind)];
    }
  }
  snapshot_ = values_;
  has_snapshot_ = true;
  ++cycles_;
}

bool Simulator::value(NetId net) const {
  if (net >= nl_.size())
    throw std::invalid_argument("Simulator::value: bad net");
  return values_[net] != 0;
}

std::uint64_t Simulator::bus(const Bus& b) const {
  return bus_value(b, [&](NetId id) { return value(id); });
}

double Simulator::mean_toggles_per_cycle() const {
  if (cycles_ <= 1) return 0.0;
  std::int64_t total = 0;
  for (std::size_t k = 0; k < toggles_.size(); ++k) {
    const auto kind = static_cast<GateKind>(k);
    if (is_physical(kind)) total += toggles_[k];
  }
  return static_cast<double>(total) / static_cast<double>(cycles_ - 1);
}

void Simulator::reset_activity() {
  toggles_.fill(0);
  cycles_ = 0;
  has_snapshot_ = false;
}

}  // namespace dbi::netlist
