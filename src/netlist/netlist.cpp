#include "netlist/netlist.hpp"

#include <stdexcept>

namespace dbi::netlist {

NetId Netlist::add_input(std::string name) {
  const NetId id = add_gate_unchecked(GateKind::kInput,
                                      {kNoNet, kNoNet, kNoNet});
  inputs_.push_back(Port{std::move(name), id});
  return id;
}

NetId Netlist::add_const(bool value) {
  return add_gate_unchecked(value ? GateKind::kConst1 : GateKind::kConst0,
                            {kNoNet, kNoNet, kNoNet});
}

NetId Netlist::add_gate(GateKind kind, NetId a, NetId b, NetId c) {
  if (kind == GateKind::kInput || kind == GateKind::kConst0 ||
      kind == GateKind::kConst1 || kind == GateKind::kDff)
    throw std::invalid_argument(
        "Netlist::add_gate: use the dedicated factory for this kind");
  const std::array<NetId, 3> in = {a, b, c};
  for (int i = 0; i < fanin_count(kind); ++i) {
    if (in.at(static_cast<std::size_t>(i)) >= gates_.size())
      throw std::invalid_argument("Netlist::add_gate: undefined fanin");
  }
  return add_gate_unchecked(kind, in);
}

NetId Netlist::add_dff(NetId d) {
  if (d != kNoNet && d >= gates_.size())
    throw std::invalid_argument("Netlist::add_dff: undefined fanin");
  const NetId id = add_gate_unchecked(GateKind::kDff, {d, kNoNet, kNoNet});
  dffs_.push_back(id);
  return id;
}

void Netlist::set_dff_input(NetId dff, NetId d) {
  if (dff >= gates_.size() || gates_[dff].kind != GateKind::kDff)
    throw std::invalid_argument("Netlist::set_dff_input: not a DFF");
  if (d >= gates_.size())
    throw std::invalid_argument("Netlist::set_dff_input: undefined fanin");
  gates_[dff].in[0] = d;
  topo_.clear();
}

void Netlist::mark_output(NetId net, std::string name) {
  if (net >= gates_.size())
    throw std::invalid_argument("Netlist::mark_output: undefined net");
  outputs_.push_back(Port{std::move(name), net});
}

NetId Netlist::add_gate_unchecked(GateKind kind, std::array<NetId, 3> in) {
  gates_.push_back(Gate{kind, in});
  topo_.clear();
  return static_cast<NetId>(gates_.size() - 1);
}

std::array<std::size_t, kGateKindCount> Netlist::kind_histogram() const {
  std::array<std::size_t, kGateKindCount> histogram{};
  for (const Gate& g : gates_)
    ++histogram[static_cast<std::size_t>(g.kind)];
  return histogram;
}

std::size_t Netlist::physical_gates() const {
  std::size_t n = 0;
  for (const Gate& g : gates_)
    if (is_physical(g.kind)) ++n;
  return n;
}

const std::vector<NetId>& Netlist::levelize() const {
  if (!topo_.empty() || gates_.empty()) return topo_;

  // Kahn's algorithm over the combinational dependency graph. DFF
  // outputs are sources (their value is register state, not a
  // combinational function); DFF D-inputs are sinks and impose no
  // ordering constraint.
  std::vector<int> pending(gates_.size(), 0);
  std::vector<std::vector<NetId>> fanout(gates_.size());
  for (NetId id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    if (g.kind == GateKind::kDff) {
      if (g.in[0] == kNoNet)
        throw std::logic_error("Netlist::levelize: unconnected DFF input");
      continue;
    }
    const int fanins = fanin_count(g.kind);
    pending[id] = fanins;
    for (int i = 0; i < fanins; ++i) {
      const NetId src = g.in[static_cast<std::size_t>(i)];
      if (src == kNoNet)
        throw std::logic_error("Netlist::levelize: unconnected fanin");
      fanout[src].push_back(id);
    }
  }

  topo_.reserve(gates_.size());
  std::vector<NetId> ready;
  for (NetId id = 0; id < gates_.size(); ++id)
    if (pending[id] == 0) ready.push_back(id);

  while (!ready.empty()) {
    const NetId id = ready.back();
    ready.pop_back();
    topo_.push_back(id);
    for (NetId sink : fanout[id])
      if (--pending[sink] == 0) ready.push_back(sink);
  }
  if (topo_.size() != gates_.size()) {
    topo_.clear();
    throw std::logic_error("Netlist::levelize: combinational cycle");
  }
  return topo_;
}

}  // namespace dbi::netlist
