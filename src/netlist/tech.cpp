#include "netlist/tech.hpp"

namespace dbi::netlist {

TechnologyModel TechnologyModel::generic_32nm() {
  TechnologyModel t;
  // {area um^2, leakage W, toggle energy J, delay s}
  // Calibrated against the magnitude of the Synopsys 32 nm generic
  // library the paper used (Table I implies ~0.4 uW/um^2 leakage at
  // the synthesis corner); relative cell sizing follows public 32/28 nm
  // educational libraries: XOR-class cells ~2x a NAND, a DFF ~6x,
  // delays in the 10-30 ps range.
  t.set_cell(GateKind::kInput, {0.0, 0.0, 0.0, 0.0});
  t.set_cell(GateKind::kConst0, {0.0, 0.0, 0.0, 0.0});
  t.set_cell(GateKind::kConst1, {0.0, 0.0, 0.0, 0.0});
  t.set_cell(GateKind::kBuf, {1.06, 300e-9, 0.6e-15, 21e-12});
  t.set_cell(GateKind::kInv, {0.81, 250e-9, 0.4e-15, 11e-12});
  t.set_cell(GateKind::kAnd2, {1.32, 400e-9, 0.7e-15, 22e-12});
  t.set_cell(GateKind::kNand2, {1.06, 350e-9, 0.55e-15, 14e-12});
  t.set_cell(GateKind::kNor2, {1.06, 350e-9, 0.55e-15, 17e-12});
  t.set_cell(GateKind::kOr2, {1.32, 400e-9, 0.7e-15, 24e-12});
  t.set_cell(GateKind::kXor2, {2.11, 600e-9, 1.2e-15, 29e-12});
  t.set_cell(GateKind::kXnor2, {2.11, 600e-9, 1.2e-15, 29e-12});
  t.set_cell(GateKind::kMux2, {2.37, 550e-9, 1.1e-15, 27e-12});
  // DFF delay field = clk-to-q (the STA uses dff_clk_to_q_s()).
  t.set_cell(GateKind::kDff, {6.61, 1500e-9, 1.2e-15, 56e-12});
  t.dff_clk_to_q_s_ = 56e-12;
  t.dff_setup_s_ = 28e-12;
  t.dff_clock_energy_j_ = 1.8e-15;
  return t;
}

}  // namespace dbi::netlist
