// Primitive cell set of the gate-level substrate. Deliberately small:
// the cells a generic standard-cell library exposes and a synthesis
// tool would map the paper's VHDL onto.
#pragma once

#include <cstdint>
#include <string_view>

namespace dbi::netlist {

enum class GateKind : std::uint8_t {
  kInput,   ///< primary input (no fanin)
  kConst0,  ///< tied-low net
  kConst1,  ///< tied-high net
  kBuf,
  kInv,
  kAnd2,
  kNand2,
  kOr2,
  kNor2,
  kXor2,
  kXnor2,
  kMux2,  ///< fanin {a, b, sel}: sel ? b : a
  kDff,   ///< fanin {d}; output is Q, updated on clock()
};

inline constexpr int kGateKindCount = 13;

/// Number of fanin nets each kind consumes.
[[nodiscard]] constexpr int fanin_count(GateKind k) {
  switch (k) {
    case GateKind::kInput:
    case GateKind::kConst0:
    case GateKind::kConst1:
      return 0;
    case GateKind::kBuf:
    case GateKind::kInv:
    case GateKind::kDff:
      return 1;
    case GateKind::kAnd2:
    case GateKind::kNand2:
    case GateKind::kOr2:
    case GateKind::kNor2:
    case GateKind::kXor2:
    case GateKind::kXnor2:
      return 2;
    case GateKind::kMux2:
      return 3;
  }
  return 0;
}

[[nodiscard]] constexpr std::string_view gate_name(GateKind k) {
  switch (k) {
    case GateKind::kInput:
      return "INPUT";
    case GateKind::kConst0:
      return "CONST0";
    case GateKind::kConst1:
      return "CONST1";
    case GateKind::kBuf:
      return "BUF";
    case GateKind::kInv:
      return "INV";
    case GateKind::kAnd2:
      return "AND2";
    case GateKind::kNand2:
      return "NAND2";
    case GateKind::kOr2:
      return "OR2";
    case GateKind::kNor2:
      return "NOR2";
    case GateKind::kXor2:
      return "XOR2";
    case GateKind::kXnor2:
      return "XNOR2";
    case GateKind::kMux2:
      return "MUX2";
    case GateKind::kDff:
      return "DFF";
  }
  return "?";
}

/// True for cells that occupy area / leak power (everything except the
/// virtual input/constant markers).
[[nodiscard]] constexpr bool is_physical(GateKind k) {
  return k != GateKind::kInput && k != GateKind::kConst0 &&
         k != GateKind::kConst1;
}

}  // namespace dbi::netlist
