// Netlist exporters: structural Verilog (so the encoder designs can be
// taken into a real synthesis flow, replacing the paper's unpublished
// VHDL) and Graphviz DOT (for inspecting small blocks).
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace dbi::netlist {

/// Emits a synthesizable structural Verilog-2001 module. Primitive
/// cells map to Verilog operators via continuous assignments; DFFs
/// become an always @(posedge clk) block (a clk port is added when the
/// design has registers). Port names are sanitised ("byte0[3]" ->
/// "byte0_3").
void write_verilog(std::ostream& os, const Netlist& nl,
                   const std::string& module_name);

/// Emits a Graphviz DOT digraph (one node per gate, one edge per
/// fanin). Intended for small blocks; refuses netlists with more than
/// `max_gates` cells to keep the output viewable.
void write_dot(std::ostream& os, const Netlist& nl,
               const std::string& graph_name, std::size_t max_gates = 4000);

/// Verilog-safe identifier: alphanumerics kept, everything else '_'.
[[nodiscard]] std::string sanitize_identifier(const std::string& name);

}  // namespace dbi::netlist
