#include "netlist/blocks.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace dbi::netlist {

Bus make_input_bus(Netlist& nl, const std::string& prefix, int bits) {
  Bus bus;
  bus.reserve(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i)
    bus.push_back(nl.add_input(prefix + "[" + std::to_string(i) + "]"));
  return bus;
}

Bus make_const_bus(Netlist& nl, std::uint64_t value, int bits) {
  Bus bus;
  bus.reserve(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) bus.push_back(nl.add_const((value >> i) & 1));
  return bus;
}

void mark_output_bus(Netlist& nl, const Bus& bus, const std::string& prefix) {
  for (std::size_t i = 0; i < bus.size(); ++i)
    nl.mark_output(bus[i], prefix + "[" + std::to_string(i) + "]");
}

bool net_is_const(const Netlist& nl, NetId net, bool& value) {
  const GateKind k = nl.gate(net).kind;
  if (k == GateKind::kConst0) {
    value = false;
    return true;
  }
  if (k == GateKind::kConst1) {
    value = true;
    return true;
  }
  return false;
}

NetId inv_fold(Netlist& nl, NetId a) {
  bool va = false;
  if (net_is_const(nl, a, va)) return nl.add_const(!va);
  return nl.inv(a);
}

NetId and_fold(Netlist& nl, NetId a, NetId b) {
  bool v = false;
  if (net_is_const(nl, a, v)) return v ? b : nl.add_const(false);
  if (net_is_const(nl, b, v)) return v ? a : nl.add_const(false);
  if (a == b) return a;
  return nl.and2(a, b);
}

NetId or_fold(Netlist& nl, NetId a, NetId b) {
  bool v = false;
  if (net_is_const(nl, a, v)) return v ? nl.add_const(true) : b;
  if (net_is_const(nl, b, v)) return v ? nl.add_const(true) : a;
  if (a == b) return a;
  return nl.or2(a, b);
}

NetId xor_fold(Netlist& nl, NetId a, NetId b) {
  bool v = false;
  if (net_is_const(nl, a, v)) return v ? inv_fold(nl, b) : b;
  if (net_is_const(nl, b, v)) return v ? inv_fold(nl, a) : a;
  if (a == b) return nl.add_const(false);
  return nl.xor2(a, b);
}

NetId mux_fold(Netlist& nl, NetId a, NetId b, NetId sel) {
  bool v = false;
  if (net_is_const(nl, sel, v)) return v ? b : a;
  if (a == b) return a;
  if (net_is_const(nl, a, v) && !v) return and_fold(nl, b, sel);
  if (net_is_const(nl, b, v) && v) return or_fold(nl, a, sel);
  return nl.mux2(a, b, sel);
}

std::pair<NetId, NetId> half_adder(Netlist& nl, NetId a, NetId b) {
  return {xor_fold(nl, a, b), and_fold(nl, a, b)};
}

std::pair<NetId, NetId> full_adder(Netlist& nl, NetId a, NetId b, NetId cin) {
  bool v = false;
  if (net_is_const(nl, cin, v) && !v) return half_adder(nl, a, b);
  if (net_is_const(nl, a, v) && !v) return half_adder(nl, b, cin);
  if (net_is_const(nl, b, v) && !v) return half_adder(nl, a, cin);
  const NetId axb = xor_fold(nl, a, b);
  const NetId sum = xor_fold(nl, axb, cin);
  const NetId carry =
      or_fold(nl, and_fold(nl, a, b), and_fold(nl, axb, cin));
  return {sum, carry};
}

Bus ripple_add(Netlist& nl, const Bus& a, const Bus& b) {
  const std::size_t width = std::max(a.size(), b.size());
  const NetId zero = nl.add_const(false);
  Bus sum;
  sum.reserve(width + 1);
  NetId carry = zero;
  for (std::size_t i = 0; i < width; ++i) {
    const NetId ai = i < a.size() ? a[i] : zero;
    const NetId bi = i < b.size() ? b[i] : zero;
    auto [s, c] = full_adder(nl, ai, bi, carry);
    sum.push_back(s);
    carry = c;
  }
  sum.push_back(carry);
  return sum;
}

Bus add_const(Netlist& nl, const Bus& a, std::uint64_t k) {
  const int kbits = k == 0 ? 1 : std::bit_width(k);
  return ripple_add(nl, a, make_const_bus(nl, k, kbits));
}

Bus const_minus(Netlist& nl, std::uint64_t k, const Bus& a, int result_bits) {
  // k - a == k + ~a + 1 (two's complement over result_bits).
  Bus inverted;
  inverted.reserve(a.size());
  for (NetId bit : a) inverted.push_back(inv_fold(nl, bit));
  Bus sum = ripple_add(nl, zero_extend(nl, inverted, result_bits),
                       make_const_bus(nl, k + 1, result_bits));
  sum.resize(static_cast<std::size_t>(result_bits));  // drop carry-out
  return sum;
}

Bus popcount(Netlist& nl, const Bus& bits) {
  if (bits.empty()) throw std::invalid_argument("popcount: empty bus");
  if (bits.size() == 1) return Bus{bits[0]};
  if (bits.size() == 2) {
    auto [s, c] = half_adder(nl, bits[0], bits[1]);
    return Bus{s, c};
  }
  if (bits.size() == 3) {
    auto [s, c] = full_adder(nl, bits[0], bits[1], bits[2]);
    return Bus{s, c};
  }
  // Divide and conquer, then ripple-add the partial counts; trim to the
  // exact achievable width so downstream comparators stay narrow.
  const std::size_t half = bits.size() / 2;
  const Bus lo = popcount(nl, Bus(bits.begin(),
                                  bits.begin() + static_cast<long>(half)));
  const Bus hi = popcount(nl, Bus(bits.begin() + static_cast<long>(half),
                                  bits.end()));
  Bus sum = ripple_add(nl, lo, hi);
  const int needed = std::bit_width(bits.size());
  if (sum.size() > static_cast<std::size_t>(needed))
    sum.resize(static_cast<std::size_t>(needed));
  return sum;
}

NetId less_than(Netlist& nl, const Bus& a, const Bus& b) {
  if (a.empty() || b.empty())
    throw std::invalid_argument("less_than: empty bus");
  // Borrow chain of a - b, LSB first:
  //   borrow' = (!a & b) | ((!a | b) & borrow)
  const std::size_t width = std::max(a.size(), b.size());
  const NetId zero = nl.add_const(false);
  NetId borrow = zero;
  for (std::size_t i = 0; i < width; ++i) {
    const NetId ai = i < a.size() ? a[i] : zero;
    const NetId bi = i < b.size() ? b[i] : zero;
    const NetId na = inv_fold(nl, ai);
    borrow = or_fold(nl, and_fold(nl, na, bi),
                     and_fold(nl, or_fold(nl, na, bi), borrow));
  }
  return borrow;
}

NetId less_than_const(Netlist& nl, const Bus& a, std::uint64_t k) {
  const int kbits = k == 0 ? 1 : std::bit_width(k);
  return less_than(nl, a, make_const_bus(nl, k, kbits));
}

Bus mux_bus(Netlist& nl, const Bus& a, const Bus& b, NetId sel) {
  if (a.size() != b.size())
    throw std::invalid_argument("mux_bus: width mismatch");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.push_back(mux_fold(nl, a[i], b[i], sel));
  return out;
}

Bus xor_bus(Netlist& nl, const Bus& a, const Bus& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("xor_bus: width mismatch");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.push_back(xor_fold(nl, a[i], b[i]));
  return out;
}

Bus xor_with(Netlist& nl, const Bus& a, NetId control) {
  Bus out;
  out.reserve(a.size());
  for (NetId bit : a) out.push_back(xor_fold(nl, bit, control));
  return out;
}

Bus zero_extend(Netlist& nl, Bus bus, int bits) {
  if (bus.size() > static_cast<std::size_t>(bits))
    throw std::invalid_argument("zero_extend: bus wider than target");
  while (bus.size() < static_cast<std::size_t>(bits))
    bus.push_back(nl.add_const(false));
  return bus;
}

Bus multiply(Netlist& nl, const Bus& value, const Bus& coeff) {
  if (value.empty() || coeff.empty())
    throw std::invalid_argument("multiply: empty bus");
  const int out_bits = static_cast<int>(value.size() + coeff.size());
  Bus acc = make_const_bus(nl, 0, out_bits);
  for (std::size_t j = 0; j < coeff.size(); ++j) {
    // Partial product: (value AND coeff[j]) << j.
    Bus partial = make_const_bus(nl, 0, out_bits);
    for (std::size_t i = 0; i < value.size() && i + j < partial.size(); ++i)
      partial[i + j] = and_fold(nl, value[i], coeff[j]);
    acc = ripple_add(nl, acc, partial);
    acc.resize(static_cast<std::size_t>(out_bits));
  }
  return acc;
}

Bus register_bus(Netlist& nl, const Bus& bus) {
  Bus out;
  out.reserve(bus.size());
  for (NetId bit : bus) out.push_back(nl.add_dff(bit));
  return out;
}

}  // namespace dbi::netlist
