// "Synthesis" report: turns a netlist + technology model + simulated
// switching activity into the quantities of the paper's Table I —
// area, static power, dynamic power, achievable burst rate and energy
// per encoded burst.
//
// Pipelining model: the architecture netlists are combinational (the
// Fig. 5 datapath); the paper's implementation adds N pipeline stages
// and lets the synthesis tool retime them into the cloud. We model the
// retimed registers explicitly as (stages - 1) internal register ranks
// of cut_bits flip-flops each, derated by a register-merging factor
// (retiming and register sharing make internal cuts narrower than the
// nominal width on average). The PHY's own input/output flops exist
// for every scheme including RAW and are therefore not charged to any
// design — matching how Table I compares encoders against each other.
#pragma once

#include <string>

#include "netlist/netlist.hpp"
#include "netlist/sim.hpp"
#include "netlist/tech.hpp"
#include "netlist/timing.hpp"

namespace dbi::netlist {

struct PipelineSpec {
  int stages = 1;      ///< total pipeline stages (1 = combinational)
  int cut_bits = 0;    ///< register bits per internal cut (0: use outputs)
  double merge_factor = 0.6;  ///< effective fraction of cut_bits per rank
};

struct SynthesisReport {
  std::string design;
  std::size_t cells = 0;            ///< physical cells incl. registers
  std::size_t register_bits = 0;    ///< modelled pipeline registers
  double area_um2 = 0.0;
  double static_power_w = 0.0;
  double critical_path_s = 0.0;     ///< before retiming
  double fmax_hz = 0.0;             ///< with the pipeline spec applied
  double dyn_energy_per_cycle_j = 0.0;

  [[nodiscard]] double dynamic_power_at(double f_hz) const {
    return dyn_energy_per_cycle_j * f_hz;
  }
  [[nodiscard]] double total_power_at(double f_hz) const {
    return static_power_w + dynamic_power_at(f_hz);
  }
  /// Energy per processed burst when clocked at f (one burst/cycle).
  [[nodiscard]] double energy_per_burst_at(double f_hz) const {
    return dyn_energy_per_cycle_j + (f_hz > 0.0 ? static_power_w / f_hz : 0.0);
  }
};

/// Builds the report. `activity` must have accumulated a representative
/// workload on `nl` (its per-kind toggle counts provide the dynamic
/// energy); pass the simulator after running the workload.
[[nodiscard]] SynthesisReport synthesize(const std::string& design_name,
                                         const Netlist& nl,
                                         const TechnologyModel& tech,
                                         const Simulator& activity,
                                         const PipelineSpec& pipeline);

}  // namespace dbi::netlist
