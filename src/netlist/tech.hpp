// Technology model: per-cell area / leakage / switching energy / delay
// in the range of a generic 32 nm standard-cell library (the paper used
// the Synopsys 32 nm educational library). The absolute values are
// order-of-magnitude calibrated; the Table I reproduction relies on the
// *relative* composition of the four encoder netlists, not on matching
// Synopsys numbers digit-for-digit (see DESIGN.md, substitutions).
#pragma once

#include <array>

#include "netlist/gate.hpp"

namespace dbi::netlist {

struct CellParams {
  double area_um2 = 0.0;
  double leakage_w = 0.0;        ///< static power per cell [W]
  double toggle_energy_j = 0.0;  ///< energy per output toggle [J]
  double delay_s = 0.0;          ///< pin-to-pin propagation delay [s]
};

class TechnologyModel {
 public:
  /// Generic 32 nm-class library (0.9 V, typical corner).
  [[nodiscard]] static TechnologyModel generic_32nm();

  [[nodiscard]] const CellParams& cell(GateKind k) const {
    return cells_[static_cast<std::size_t>(k)];
  }
  void set_cell(GateKind k, const CellParams& p) {
    cells_[static_cast<std::size_t>(k)] = p;
  }

  /// Flip-flop sequencing overhead bounding the clock period:
  /// period >= comb_delay / stages + clk_to_q + setup.
  [[nodiscard]] double dff_clk_to_q_s() const { return dff_clk_to_q_s_; }
  [[nodiscard]] double dff_setup_s() const { return dff_setup_s_; }
  /// Clock-tree / internal clocking energy per flip-flop per cycle,
  /// paid whether or not the output toggles.
  [[nodiscard]] double dff_clock_energy_j() const { return dff_clock_energy_j_; }

 private:
  std::array<CellParams, kGateKindCount> cells_{};
  double dff_clk_to_q_s_ = 0.0;
  double dff_setup_s_ = 0.0;
  double dff_clock_energy_j_ = 0.0;
};

}  // namespace dbi::netlist
