// Burst traces: materialised streams of bursts, with summary statistics
// and a simple line-oriented text format for saving / replaying
// workloads across runs and tools.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/burst.hpp"
#include "workload/generators.hpp"

namespace dbi::workload {

/// Payload statistics of a trace (before any DBI encoding).
struct TraceStats {
  std::int64_t bursts = 0;
  std::int64_t payload_bits = 0;
  std::int64_t payload_zeros = 0;
  /// Raw (unencoded) beat-to-beat payload transitions with the paper's
  /// all-ones boundary per burst.
  std::int64_t raw_transitions = 0;

  [[nodiscard]] double zero_fraction() const {
    return payload_bits > 0
               ? static_cast<double>(payload_zeros) /
                     static_cast<double>(payload_bits)
               : 0.0;
  }
};

class BurstTrace {
 public:
  explicit BurstTrace(const dbi::BusConfig& cfg);

  /// Materialises `count` bursts from `source`.
  [[nodiscard]] static BurstTrace collect(BurstSource& source,
                                          std::int64_t count);

  void push(dbi::Burst burst);

  [[nodiscard]] const dbi::BusConfig& config() const { return cfg_; }
  [[nodiscard]] std::span<const dbi::Burst> bursts() const { return bursts_; }
  [[nodiscard]] std::size_t size() const { return bursts_.size(); }
  [[nodiscard]] bool empty() const { return bursts_.empty(); }
  [[nodiscard]] const dbi::Burst& operator[](std::size_t i) const {
    return bursts_[i];
  }

  [[nodiscard]] TraceStats stats() const;

  /// Text format: header "dbi-trace v1 <width> <burst_length>", then
  /// one burst per line as whitespace-separated hex words.
  void save(std::ostream& os) const;
  [[nodiscard]] static BurstTrace load(std::istream& is);

 private:
  dbi::BusConfig cfg_;
  std::vector<dbi::Burst> bursts_;
};

/// Parses and validates the v1 text header line
/// ("dbi-trace v1 <width> <burst_length>"); throws std::runtime_error
/// with a diagnostic on malformed headers or unusable geometry.
[[nodiscard]] dbi::BusConfig parse_text_trace_header(std::istream& is);

/// Parses one burst line of whitespace-separated hex words into
/// `words`. `line_no` is the 1-based file line for error messages;
/// truncated lines, extra words, non-hex tokens and words that don't
/// fit the bus width all throw std::runtime_error naming the line.
/// Returns false for blank lines (words is left empty).
bool parse_text_trace_line(const std::string& line, const dbi::BusConfig& cfg,
                           std::int64_t line_no, std::vector<dbi::Word>& words);

}  // namespace dbi::workload
