#include "workload/corpus.hpp"

#include <array>
#include <stdexcept>
#include <string>

#include "workload/rng.hpp"

namespace dbi::workload {
namespace {

using dbi::Burst;
using dbi::BusConfig;
using dbi::Word;

/// Cache-line copies of heap-object data: a byte stream of 16-byte
/// records [48-bit pointer | u32 length | u32 flags], little-endian —
/// near-constant high pointer bytes, small-integer fields whose high
/// bytes are mostly zero, and sparse flag words. Models the memcpy /
/// struct-assignment traffic that dominates many CPU workloads.
/// Requires width == 8.
class CachelineMemcpySource final : public BurstSource {
 public:
  CachelineMemcpySource(const BusConfig& cfg, std::uint64_t seed)
      : BurstSource(cfg), rng_(seed) {
    if (cfg.width != 8)
      throw std::invalid_argument(
          "cacheline-memcpy corpus requires width == 8");
    heap_base_ = 0x00007F0000000000ULL |
                 ((rng_.next() & 0xFFFULL) << 28);  // one mmap region
  }
  [[nodiscard]] std::string_view name() const override {
    return "cacheline-memcpy";
  }

  [[nodiscard]] Burst next() override {
    Burst b(config());
    for (int i = 0; i < b.length(); ++i) {
      if (pos_ == record_.size()) refill();
      b.set_word(i, record_[pos_++]);
    }
    return b;
  }

 private:
  void refill() {
    const std::uint64_t ptr =
        heap_base_ + ((rng_.next() & 0xFFFFFFULL) << 4);  // 16-aligned
    const std::uint32_t len =
        static_cast<std::uint32_t>(rng_.next() & 0x3FULL) + 1;  // small
    const std::uint32_t flags =
        (rng_.next() & 3ULL) == 0
            ? static_cast<std::uint32_t>(rng_.next() & 0xFFULL)
            : 0;  // mostly zero
    for (int i = 0; i < 8; ++i)
      record_[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(ptr >> (8 * i));
    for (int i = 0; i < 4; ++i) {
      record_[static_cast<std::size_t>(8 + i)] =
          static_cast<std::uint8_t>(len >> (8 * i));
      record_[static_cast<std::size_t>(12 + i)] =
          static_cast<std::uint8_t>(flags >> (8 * i));
    }
    pos_ = 0;
  }

  Xoshiro256 rng_;
  std::uint64_t heap_base_;
  std::array<std::uint8_t, 16> record_{};
  std::size_t pos_ = record_.size();  // refill on first beat
};

/// Block-interleaved mix of the extremes of the coding-gain spectrum —
/// sparse-zeros, ascii-text, float-tensor and high-entropy phases of
/// 256 bursts each. No single scheme is optimal across the phases (DC
/// wins the zero-heavy and noise-like phases on combined energy, AC
/// the low-toggle text), so this is the scenario adaptive
/// "mixed-block" selection is measured on; the phase length matches
/// the default selection block size.
class MixedPhaseSource final : public BurstSource {
 public:
  MixedPhaseSource(const BusConfig& cfg, std::uint64_t seed)
      : BurstSource(cfg) {
    parts_[0] = make_sparse_source(cfg, 0.85, seed);
    parts_[1] = make_text_source(cfg, seed + 1);
    parts_[2] = make_tensor_source(cfg, seed + 2);
    parts_[3] = make_uniform_source(cfg, seed + 3);
  }
  [[nodiscard]] std::string_view name() const override { return "mixed"; }

  [[nodiscard]] Burst next() override {
    const auto phase =
        static_cast<std::size_t>(bursts_++ / kPhaseBursts) % parts_.size();
    return parts_[phase]->next();
  }

 private:
  static constexpr std::int64_t kPhaseBursts = 256;
  std::array<std::unique_ptr<BurstSource>, 4> parts_;
  std::int64_t bursts_ = 0;
};

constexpr std::array<CorpusScenario, 8> kScenarios{{
    {"cacheline-memcpy",
     "heap-object copies: pointers, small ints, sparse flags"},
    {"sparse-zeros", "zero-dominated pages (85% zero words)"},
    {"float-tensor", "float32 NN weights ~N(0, 0.05), streamed byte-wise"},
    {"ascii-text", "English-like ASCII byte stream"},
    {"high-entropy", "pre-compressed / encrypted data (uniform bits)"},
    {"address-stream", "cache-line-strided addresses (counter, stride 64)"},
    {"framebuffer", "ARGB8888 scanline gradients with dithering noise"},
    {"mixed",
     "block-interleaved sparse-zeros / ascii-text / float-tensor / "
     "high-entropy phases"},
}};

}  // namespace

std::span<const CorpusScenario> corpus_scenarios() { return kScenarios; }

std::unique_ptr<BurstSource> make_corpus_source(std::string_view name,
                                                const dbi::BusConfig& cfg,
                                                std::uint64_t seed) {
  if (name == "cacheline-memcpy")
    return std::make_unique<CachelineMemcpySource>(cfg, seed);
  if (name == "sparse-zeros") return make_sparse_source(cfg, 0.85, seed);
  if (name == "float-tensor") return make_tensor_source(cfg, seed);
  if (name == "ascii-text") return make_text_source(cfg, seed);
  if (name == "high-entropy") return make_uniform_source(cfg, seed);
  if (name == "address-stream")
    return make_counter_source(cfg, seed * 64, 64);
  if (name == "framebuffer") return make_framebuffer_source(cfg, seed);
  if (name == "mixed") return std::make_unique<MixedPhaseSource>(cfg, seed);

  std::string known;
  for (const CorpusScenario& s : kScenarios) {
    if (!known.empty()) known += "|";
    known += std::string(s.name);
  }
  throw std::invalid_argument("unknown corpus scenario \"" +
                              std::string(name) + "\" (" + known + ")");
}

void fill_wide_bursts(BurstSource& source, const dbi::WideBusConfig& cfg,
                      std::span<std::uint8_t> out) {
  cfg.validate();
  if (source.config().width != 8)
    throw std::invalid_argument(
        "fill_wide_bursts: the source must stream bytes (width 8), got "
        "width " +
        std::to_string(source.config().width));
  const auto bb = static_cast<std::size_t>(cfg.bytes_per_burst());
  if (out.size() % bb != 0)
    throw std::invalid_argument(
        "fill_wide_bursts: output of " + std::to_string(out.size()) +
        " bytes is not a multiple of the " + std::to_string(bb) +
        "-byte packed wide burst");
  const auto groups = static_cast<std::size_t>(cfg.groups());
  const auto gmask =
      static_cast<std::uint8_t>(cfg.group_mask(cfg.groups() - 1));

  std::size_t pos = 0;
  while (pos < out.size()) {
    const dbi::Burst burst = source.next();
    for (int t = 0; t < burst.length() && pos < out.size(); ++t) {
      auto byte = static_cast<std::uint8_t>(burst.word(t));
      if (pos % groups == groups - 1) byte &= gmask;
      out[pos++] = byte;
    }
  }
}

void fill_wide_corpus(std::string_view name, const dbi::WideBusConfig& cfg,
                      std::uint64_t seed, std::span<std::uint8_t> out) {
  const auto source =
      make_corpus_source(name, dbi::BusConfig{8, cfg.burst_length}, seed);
  fill_wide_bursts(*source, cfg, out);
}

}  // namespace dbi::workload
