// Scenario corpus: named payload classes covering the traffic mix a
// real memory channel carries, each resolvable by name so tools and
// benchmarks can record diverse traces without hand-wiring generator
// parameters. The classes deliberately span the coding-gain spectrum:
// zeros-heavy pages where DC inversion shines, structured copies and
// float tensors with per-byte-lane statistics, ASCII text, and
// pre-compressed / high-entropy data where no encoder can win much.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "core/types.hpp"
#include "workload/generators.hpp"

namespace dbi::workload {

struct CorpusScenario {
  std::string_view name;
  std::string_view description;
};

/// Every named scenario, in a stable order.
[[nodiscard]] std::span<const CorpusScenario> corpus_scenarios();

/// Instantiates the scenario `name` (see corpus_scenarios()) with the
/// given geometry and seed. Throws std::invalid_argument for unknown
/// names, listing the valid ones.
[[nodiscard]] std::unique_ptr<BurstSource> make_corpus_source(
    std::string_view name, const dbi::BusConfig& cfg, std::uint64_t seed);

}  // namespace dbi::workload
