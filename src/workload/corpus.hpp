// Scenario corpus: named payload classes covering the traffic mix a
// real memory channel carries, each resolvable by name so tools and
// benchmarks can record diverse traces without hand-wiring generator
// parameters. The classes deliberately span the coding-gain spectrum:
// zeros-heavy pages where DC inversion shines, structured copies and
// float tensors with per-byte-lane statistics, ASCII text, and
// pre-compressed / high-entropy data where no encoder can win much.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "core/types.hpp"
#include "workload/generators.hpp"

namespace dbi::workload {

struct CorpusScenario {
  std::string_view name;
  std::string_view description;
};

/// Every named scenario, in a stable order.
[[nodiscard]] std::span<const CorpusScenario> corpus_scenarios();

/// Instantiates the scenario `name` (see corpus_scenarios()) with the
/// given geometry and seed. Throws std::invalid_argument for unknown
/// names, listing the valid ones.
[[nodiscard]] std::unique_ptr<BurstSource> make_corpus_source(
    std::string_view name, const dbi::BusConfig& cfg, std::uint64_t seed);

/// Streams a byte source (width-8 BurstSource) into packed beat-major
/// wide bursts: consecutive scenario bytes fill a burst across the
/// groups of a beat, then down the beats — the order in which a wide
/// device actually consumes a memcpy'd byte stream. `out` must be a
/// multiple of cfg.bytes_per_burst(); remainder-group bytes are masked
/// to the group width. Deterministic for a deterministic source.
void fill_wide_bursts(BurstSource& source, const dbi::WideBusConfig& cfg,
                      std::span<std::uint8_t> out);

/// fill_wide_bursts over the named corpus scenario — the
/// width-parameterised corpus: "cacheline-memcpy" at width 16,
/// "float-tensor" at width 32, "framebuffer" at width 64, and so on.
void fill_wide_corpus(std::string_view name, const dbi::WideBusConfig& cfg,
                      std::uint64_t seed, std::span<std::uint8_t> out);

}  // namespace dbi::workload
