// Compatibility alias: the PRNG moved to util/rng.hpp so that core can
// use it (noisy encoder) without a core <-> workload cycle. Workload
// call sites keep their dbi::workload::Xoshiro256 spelling.
#pragma once

#include "util/rng.hpp"

namespace dbi::workload {

using util::splitmix64;
using util::Xoshiro256;

}  // namespace dbi::workload
