#include "workload/generators.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "workload/rng.hpp"

namespace dbi::workload {
namespace {

using dbi::Burst;
using dbi::BusConfig;
using dbi::Word;

class UniformSource final : public BurstSource {
 public:
  UniformSource(const BusConfig& cfg, std::uint64_t seed)
      : BurstSource(cfg), rng_(seed) {}
  [[nodiscard]] std::string_view name() const override { return "uniform"; }

  [[nodiscard]] Burst next() override {
    Burst b(config());
    for (int i = 0; i < b.length(); ++i)
      b.set_word(i, static_cast<Word>(rng_.next()) & config().dq_mask());
    return b;
  }

 private:
  Xoshiro256 rng_;
};

class BiasedSource final : public BurstSource {
 public:
  BiasedSource(const BusConfig& cfg, double p_one, std::uint64_t seed)
      : BurstSource(cfg), p_one_(p_one), rng_(seed) {
    if (p_one < 0.0 || p_one > 1.0)
      throw std::invalid_argument("BiasedSource: p_one must be in [0,1]");
  }
  [[nodiscard]] std::string_view name() const override { return "biased"; }

  [[nodiscard]] Burst next() override {
    Burst b(config());
    for (int i = 0; i < b.length(); ++i)
      b.set_word(i, rng_.next_biased_bits(config().width, p_one_));
    return b;
  }

 private:
  double p_one_;
  Xoshiro256 rng_;
};

class SparseSource final : public BurstSource {
 public:
  SparseSource(const BusConfig& cfg, double p_zero_word, std::uint64_t seed)
      : BurstSource(cfg), p_zero_word_(p_zero_word), rng_(seed) {
    if (p_zero_word < 0.0 || p_zero_word > 1.0)
      throw std::invalid_argument("SparseSource: p_zero_word not in [0,1]");
  }
  [[nodiscard]] std::string_view name() const override { return "sparse"; }

  [[nodiscard]] Burst next() override {
    Burst b(config());
    for (int i = 0; i < b.length(); ++i) {
      if (rng_.next_bool(p_zero_word_)) continue;  // word stays zero
      b.set_word(i, static_cast<Word>(rng_.next()) & config().dq_mask());
    }
    return b;
  }

 private:
  double p_zero_word_;
  Xoshiro256 rng_;
};

class CounterSource final : public BurstSource {
 public:
  CounterSource(const BusConfig& cfg, std::uint64_t start, std::uint64_t step)
      : BurstSource(cfg), value_(start), step_(step) {}
  [[nodiscard]] std::string_view name() const override { return "counter"; }

  [[nodiscard]] Burst next() override {
    Burst b(config());
    for (int i = 0; i < b.length(); ++i) {
      b.set_word(i, static_cast<Word>(value_) & config().dq_mask());
      value_ += step_;
    }
    return b;
  }

 private:
  std::uint64_t value_;
  std::uint64_t step_;
};

class GrayCounterSource final : public BurstSource {
 public:
  GrayCounterSource(const BusConfig& cfg, std::uint64_t start)
      : BurstSource(cfg), value_(start) {}
  [[nodiscard]] std::string_view name() const override {
    return "gray-counter";
  }

  [[nodiscard]] Burst next() override {
    Burst b(config());
    for (int i = 0; i < b.length(); ++i) {
      const std::uint64_t gray = value_ ^ (value_ >> 1);
      b.set_word(i, static_cast<Word>(gray) & config().dq_mask());
      ++value_;
    }
    return b;
  }

 private:
  std::uint64_t value_;
};

class WalkingOnesSource final : public BurstSource {
 public:
  explicit WalkingOnesSource(const BusConfig& cfg)
      : BurstSource(cfg), position_(0) {}
  [[nodiscard]] std::string_view name() const override {
    return "walking-ones";
  }

  [[nodiscard]] Burst next() override {
    Burst b(config());
    for (int i = 0; i < b.length(); ++i) {
      b.set_word(i, Word{1} << position_);
      position_ = (position_ + 1) % config().width;
    }
    return b;
  }

 private:
  int position_;
};

// Approximate English letter frequencies (per mille), space-heavy like
// running text; enough realism for interface statistics.
class TextSource final : public BurstSource {
 public:
  TextSource(const BusConfig& cfg, std::uint64_t seed)
      : BurstSource(cfg), rng_(seed) {
    if (cfg.width != 8)
      throw std::invalid_argument("TextSource requires width == 8");
  }
  [[nodiscard]] std::string_view name() const override { return "text"; }

  [[nodiscard]] Burst next() override {
    Burst b(config());
    for (int i = 0; i < b.length(); ++i)
      b.set_word(i, static_cast<Word>(next_char()));
    return b;
  }

 private:
  char next_char() {
    if (word_remaining_ == 0) {
      // Geometric word length, mean ~5, then one separator.
      word_remaining_ = 1;
      while (word_remaining_ < 12 && rng_.next_bool(0.8)) ++word_remaining_;
      return ' ';
    }
    --word_remaining_;
    static constexpr std::string_view kAlphabet =
        "etaoinshrdlcumwfgypbvkjxqz";
    // Zipf-flavoured pick biased towards the frequent letters.
    const auto r = rng_.next_double() * rng_.next_double();
    const auto idx = static_cast<std::size_t>(
        r * static_cast<double>(kAlphabet.size()));
    char c = kAlphabet[std::min(idx, kAlphabet.size() - 1)];
    if (word_remaining_ > 0 && rng_.next_bool(0.04)) c -= 'a' - 'A';
    return c;
  }

  Xoshiro256 rng_;
  int word_remaining_ = 0;
};

class FloatSource final : public BurstSource {
 public:
  FloatSource(const BusConfig& cfg, std::uint64_t seed)
      : BurstSource(cfg), rng_(seed) {
    if (cfg.width != 8)
      throw std::invalid_argument("FloatSource requires width == 8");
  }
  [[nodiscard]] std::string_view name() const override { return "float32"; }

  [[nodiscard]] Burst next() override {
    Burst b(config());
    for (int i = 0; i < b.length(); ++i) {
      if (byte_index_ == 0) {
        value_ += (rng_.next_double() - 0.5) * 0.125 * (1.0 + value_ * 0.01);
        const float f = static_cast<float>(value_);
        static_assert(sizeof(f) == sizeof(current_));
        std::memcpy(&current_, &f, sizeof(f));
      }
      b.set_word(i, (current_ >> (8 * byte_index_)) & 0xFFU);
      byte_index_ = (byte_index_ + 1) % 4;
    }
    return b;
  }

 private:
  Xoshiro256 rng_;
  double value_ = 1.0;
  std::uint32_t current_ = 0;
  int byte_index_ = 0;
};

class MarkovSource final : public BurstSource {
 public:
  MarkovSource(const BusConfig& cfg, double p_stay, std::uint64_t seed)
      : BurstSource(cfg), p_stay_(p_stay), rng_(seed) {
    if (p_stay < 0.0 || p_stay > 1.0)
      throw std::invalid_argument("MarkovSource: p_stay must be in [0,1]");
    state_ = static_cast<Word>(rng_.next()) & cfg.dq_mask();
  }
  [[nodiscard]] std::string_view name() const override { return "markov"; }

  [[nodiscard]] Burst next() override {
    Burst b(config());
    for (int i = 0; i < b.length(); ++i) {
      Word flips = 0;
      for (int bit = 0; bit < config().width; ++bit)
        if (!rng_.next_bool(p_stay_)) flips |= Word{1} << bit;
      state_ = (state_ ^ flips) & config().dq_mask();
      b.set_word(i, state_);
    }
    return b;
  }

 private:
  double p_stay_;
  Xoshiro256 rng_;
  Word state_;
};

class FramebufferSource final : public BurstSource {
 public:
  FramebufferSource(const BusConfig& cfg, std::uint64_t seed)
      : BurstSource(cfg), rng_(seed) {
    if (cfg.width != 8)
      throw std::invalid_argument("FramebufferSource requires width == 8");
    new_scanline();
  }
  [[nodiscard]] std::string_view name() const override {
    return "framebuffer";
  }

  [[nodiscard]] Burst next() override {
    Burst b(config());
    for (int i = 0; i < b.length(); ++i) {
      if (channel_ == 0) advance_pixel();
      // Byte order B, G, R, A per pixel (little-endian ARGB8888).
      const double value =
          channel_ == 3 ? 255.0
                        : colour_[static_cast<std::size_t>(channel_)];
      const double dithered =
          value + (rng_.next_double() - 0.5) * 2.0;  // +-1 LSB dither
      b.set_word(i, static_cast<Word>(
                        std::clamp(static_cast<int>(dithered), 0, 255)));
      channel_ = (channel_ + 1) % 4;
    }
    return b;
  }

 private:
  void new_scanline() {
    for (auto& c : colour_) c = 255.0 * rng_.next_double();
    for (auto& s : slope_) s = (rng_.next_double() - 0.5) * 1.5;
    pixels_left_ = 64 + static_cast<int>(rng_.next_below(192));
  }
  void advance_pixel() {
    if (--pixels_left_ <= 0) new_scanline();
    for (std::size_t c = 0; c < colour_.size(); ++c)
      colour_[c] = std::clamp(colour_[c] + slope_[c], 0.0, 255.0);
  }

  Xoshiro256 rng_;
  std::array<double, 3> colour_{};  // B, G, R
  std::array<double, 3> slope_{};
  int pixels_left_ = 0;
  int channel_ = 0;
};

class TensorSource final : public BurstSource {
 public:
  TensorSource(const BusConfig& cfg, std::uint64_t seed)
      : BurstSource(cfg), rng_(seed) {
    if (cfg.width != 8)
      throw std::invalid_argument("TensorSource requires width == 8");
  }
  [[nodiscard]] std::string_view name() const override { return "tensor"; }

  [[nodiscard]] Burst next() override {
    Burst b(config());
    for (int i = 0; i < b.length(); ++i) {
      if (byte_index_ == 0) {
        // Approximate N(0, 0.05) via a sum of uniforms (CLT).
        double sum = 0.0;
        for (int k = 0; k < 6; ++k) sum += rng_.next_double() - 0.5;
        const float weight = static_cast<float>(sum * 0.07);
        static_assert(sizeof(weight) == sizeof(current_));
        std::memcpy(&current_, &weight, sizeof(weight));
      }
      b.set_word(i, (current_ >> (8 * byte_index_)) & 0xFFU);
      byte_index_ = (byte_index_ + 1) % 4;
    }
    return b;
  }

 private:
  Xoshiro256 rng_;
  std::uint32_t current_ = 0;
  int byte_index_ = 0;
};

}  // namespace

std::unique_ptr<BurstSource> make_uniform_source(const BusConfig& cfg,
                                                 std::uint64_t seed) {
  return std::make_unique<UniformSource>(cfg, seed);
}
std::unique_ptr<BurstSource> make_biased_source(const BusConfig& cfg,
                                                double p_one,
                                                std::uint64_t seed) {
  return std::make_unique<BiasedSource>(cfg, p_one, seed);
}
std::unique_ptr<BurstSource> make_sparse_source(const BusConfig& cfg,
                                                double p_zero_word,
                                                std::uint64_t seed) {
  return std::make_unique<SparseSource>(cfg, p_zero_word, seed);
}
std::unique_ptr<BurstSource> make_counter_source(const BusConfig& cfg,
                                                 std::uint64_t start,
                                                 std::uint64_t stride) {
  return std::make_unique<CounterSource>(cfg, start, stride);
}
std::unique_ptr<BurstSource> make_gray_counter_source(const BusConfig& cfg,
                                                      std::uint64_t start) {
  return std::make_unique<GrayCounterSource>(cfg, start);
}
std::unique_ptr<BurstSource> make_walking_ones_source(const BusConfig& cfg) {
  return std::make_unique<WalkingOnesSource>(cfg);
}
std::unique_ptr<BurstSource> make_text_source(const BusConfig& cfg,
                                              std::uint64_t seed) {
  return std::make_unique<TextSource>(cfg, seed);
}
std::unique_ptr<BurstSource> make_float_source(const BusConfig& cfg,
                                               std::uint64_t seed) {
  return std::make_unique<FloatSource>(cfg, seed);
}
std::unique_ptr<BurstSource> make_markov_source(const BusConfig& cfg,
                                                double p_stay,
                                                std::uint64_t seed) {
  return std::make_unique<MarkovSource>(cfg, p_stay, seed);
}

std::unique_ptr<BurstSource> make_framebuffer_source(const BusConfig& cfg,
                                                     std::uint64_t seed) {
  return std::make_unique<FramebufferSource>(cfg, seed);
}
std::unique_ptr<BurstSource> make_tensor_source(const BusConfig& cfg,
                                                std::uint64_t seed) {
  return std::make_unique<TensorSource>(cfg, seed);
}

}  // namespace dbi::workload
