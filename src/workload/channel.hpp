// A multi-lane memory write channel: `lanes` independent DBI groups
// side by side, as in a x32 GDDR5/GDDR5X device (4 byte lanes, each
// with its own DBI wire) or a x64 DDR4 DIMM (8 lanes).
//
// The channel owns one persistent bus state per lane, so consecutive
// writes see the true line history instead of the paper's per-burst
// all-ones boundary — which is exactly what a memory controller
// integration would experience.
//
// Engine-backed channels are a thin wrapper over dbi::Session (the
// public streaming facade): the Scheme constructor builds a SessionSpec
// and both write() and write_stream() delegate to it, so the channel
// never wires engine objects itself. The Encoder constructor keeps the
// scalar per-burst virtual path for encoders that have no engine twin
// (e.g. the noisy wrapper).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "api/session.hpp"
#include "api/stream_stats.hpp"
#include "core/encoder.hpp"
#include "core/encoding.hpp"
#include "core/types.hpp"

namespace dbi::workload {

struct ChannelConfig {
  int lanes = 4;              ///< DBI groups side by side (x32: 4)
  dbi::BusConfig lane{8, 8};  ///< geometry of each group
  bool reset_state_per_write = false;  ///< paper boundary vs persistent

  void validate() const;

  /// Bytes carried by one full-channel burst (e.g. 32 for x32 BL8 —
  /// one GPU cache sector / half a CPU cache line). 64-bit so callers
  /// can multiply by write counts without widening first.
  [[nodiscard]] std::int64_t bytes_per_write() const {
    return static_cast<std::int64_t>(lanes) *
           static_cast<std::int64_t>(lane.burst_length);
  }
};

/// Aggregate counters over everything a channel transmitted — the
/// unified streaming totals type (bursts = writes * lanes).
using ChannelStats = dbi::StreamStats;

class Channel {
 public:
  /// The channel takes ownership of the encoder (shared across lanes;
  /// encoders are stateless, the channel threads per-lane state).
  /// Writes go through the per-burst virtual path — use the Scheme
  /// constructor for the Session-backed fast paths.
  Channel(const ChannelConfig& cfg, std::unique_ptr<dbi::Encoder> encoder);

  /// Session-backed channel: every write routes through the dbi::Session
  /// facade over the batch-engine fast paths for `scheme` (bit-exact vs
  /// the scalar encoder). `w` parameterises kOpt, as in dbi::make_encoder.
  Channel(const ChannelConfig& cfg, dbi::Scheme scheme,
          const dbi::CostWeights& w = {});

  [[nodiscard]] const ChannelConfig& config() const { return cfg_; }
  [[nodiscard]] const dbi::Encoder& encoder() const {
    return session_ ? session_->scalar_encoder() : *encoder_;
  }
  [[nodiscard]] bool uses_engine() const { return session_ != nullptr; }

  /// Writes one full-channel burst. `data.size()` must equal
  /// config().bytes_per_write(); byte b of beat t of lane l is
  /// data[t * lanes + l] (beat-major interleaving, like the physical
  /// wire assignment of a x32 device). Requires lane.width == 8.
  /// Returns the per-lane encodings (lane-indexed) and updates the
  /// running statistics.
  std::vector<dbi::EncodedBurst> write(std::span<const std::uint8_t> data);

  /// Batched stats-only write path: `data` holds any number of
  /// consecutive full-channel writes (size a multiple of
  /// bytes_per_write(), same beat-major layout). Session-backed
  /// channels of up to 8 byte lanes encode the interleaved bytes in
  /// place as a width-8*lanes wide bus (lane l = byte group l, no
  /// gather pass); with `pool`, lanes are sharded deterministically
  /// across its workers. Encoder-backed channels take the scalar route
  /// — serially even when a pool is given, since a caller-supplied
  /// encoder (e.g. the noisy wrapper) may carry state that is not safe
  /// to share across workers — and yield identical stats. Returns the
  /// stats of just this call.
  ChannelStats write_stream(std::span<const std::uint8_t> data,
                            engine::ShardPool* pool = nullptr);

  /// Statistics of everything written so far.
  [[nodiscard]] const ChannelStats& stats() const {
    return session_ ? session_->stats() : stats_;
  }

  /// Restores the all-ones line state and clears statistics.
  void reset();

 private:
  dbi::Burst lane_burst(std::span<const std::uint8_t> data, int lane) const;

  ChannelConfig cfg_;
  std::unique_ptr<dbi::Encoder> encoder_;  // scalar virtual path
  std::unique_ptr<dbi::Session> session_;  // engine facade path
  std::vector<dbi::BusState> lane_state_;  // scalar path only
  ChannelStats stats_;                     // scalar path only
};

}  // namespace dbi::workload
