// A multi-lane memory write channel: `lanes` independent DBI groups
// side by side, as in a x32 GDDR5/GDDR5X device (4 byte lanes, each
// with its own DBI wire) or a x64 DDR4 DIMM (8 lanes).
//
// The channel owns one encoder and one persistent bus state per lane,
// so consecutive writes see the true line history instead of the paper's
// per-burst all-ones boundary — which is exactly what a memory
// controller integration would experience.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/encoder.hpp"
#include "core/encoding.hpp"
#include "core/types.hpp"
#include "engine/batch_encoder.hpp"
#include "engine/shard_pool.hpp"

namespace dbi::workload {

struct ChannelConfig {
  int lanes = 4;                 ///< DBI groups side by side (x32: 4)
  dbi::BusConfig lane{8, 8};     ///< geometry of each group
  bool reset_state_per_write = false;  ///< paper boundary vs persistent

  void validate() const;

  /// Bytes carried by one full-channel burst (e.g. 32 for x32 BL8 —
  /// one GPU cache sector / half a CPU cache line).
  [[nodiscard]] int bytes_per_write() const {
    return lanes * lane.burst_length;
  }
};

/// Aggregate counters over everything a channel transmitted.
struct ChannelStats {
  std::int64_t writes = 0;
  std::int64_t zeros = 0;
  std::int64_t transitions = 0;

  ChannelStats& operator+=(const ChannelStats& o) {
    writes += o.writes;
    zeros += o.zeros;
    transitions += o.transitions;
    return *this;
  }
  [[nodiscard]] double zeros_per_write() const {
    return writes ? static_cast<double>(zeros) / static_cast<double>(writes)
                  : 0.0;
  }
  [[nodiscard]] double transitions_per_write() const {
    return writes
               ? static_cast<double>(transitions) / static_cast<double>(writes)
               : 0.0;
  }
};

class Channel {
 public:
  /// The channel takes ownership of the encoder (shared across lanes;
  /// encoders are stateless, the channel threads per-lane state).
  /// Writes go through the per-burst virtual path — use the Scheme
  /// constructor for the batch-engine fast paths.
  Channel(const ChannelConfig& cfg, std::unique_ptr<dbi::Encoder> encoder);

  /// Engine-backed channel: every write routes through the
  /// engine::BatchEncoder fast paths for `scheme` (bit-exact vs the
  /// scalar encoder). `w` parameterises kOpt, as in dbi::make_encoder.
  Channel(const ChannelConfig& cfg, dbi::Scheme scheme,
          const dbi::CostWeights& w = {});

  [[nodiscard]] const ChannelConfig& config() const { return cfg_; }
  [[nodiscard]] const dbi::Encoder& encoder() const {
    return engine_ ? engine_->scalar_twin() : *encoder_;
  }
  [[nodiscard]] bool uses_engine() const { return engine_ != nullptr; }

  /// Writes one full-channel burst. `data.size()` must equal
  /// config().bytes_per_write(); byte b of beat t of lane l is
  /// data[t * lanes + l] (beat-major interleaving, like the physical
  /// wire assignment of a x32 device). Requires lane.width == 8.
  /// Returns the per-lane encodings (lane-indexed) and updates the
  /// running statistics.
  std::vector<dbi::EncodedBurst> write(std::span<const std::uint8_t> data);

  /// Batched stats-only write path: `data` holds any number of
  /// consecutive full-channel writes (size a multiple of
  /// bytes_per_write(), same beat-major layout). Encodes every lane's
  /// burst stream through the engine without materialising
  /// EncodedBursts, updates the running statistics and per-lane line
  /// state, and returns the stats of just this call. Engine-backed
  /// channels of up to 8 byte lanes take the wide fast path: the
  /// interleaved bytes are encoded in place as a width-8*lanes wide bus
  /// (lane l = byte group l, no gather pass). With `pool`,
  /// lanes are sharded deterministically across its workers. Requires
  /// an engine-backed channel for the fast path; encoder-backed
  /// channels take the scalar route — serially even when a pool is
  /// given, since a caller-supplied encoder (e.g. the noisy wrapper)
  /// may carry state that is not safe to share across workers — and
  /// yield identical stats.
  ChannelStats write_stream(std::span<const std::uint8_t> data,
                            engine::ShardPool* pool = nullptr);

  /// Statistics of everything written so far.
  [[nodiscard]] const ChannelStats& stats() const { return stats_; }

  /// Restores the all-ones line state and clears statistics.
  void reset();

 private:
  dbi::Burst lane_burst(std::span<const std::uint8_t> data, int lane) const;

  ChannelConfig cfg_;
  std::unique_ptr<dbi::Encoder> encoder_;
  std::unique_ptr<engine::BatchEncoder> engine_;  // null: virtual path
  std::vector<dbi::BusState> lane_state_;
  ChannelStats stats_;
};

}  // namespace dbi::workload
