#include "workload/channel.hpp"

#include <stdexcept>
#include <string>

namespace dbi::workload {

namespace {

dbi::SessionSpec channel_spec(const ChannelConfig& cfg, dbi::Scheme scheme,
                              const dbi::CostWeights& w) {
  dbi::SessionSpec spec;
  spec.scheme = scheme;
  spec.geometry = dbi::Geometry::of(cfg.lane);
  spec.lanes = cfg.lanes;
  spec.weights = w;
  spec.state_policy = cfg.reset_state_per_write
                          ? dbi::StatePolicy::kResetPerBurst
                          : dbi::StatePolicy::kThread;
  return spec;
}

}  // namespace

void ChannelConfig::validate() const {
  lane.validate();
  if (lanes < 1 || lanes > 64)
    throw std::invalid_argument("ChannelConfig: lanes must be in [1,64]");
  if (lane.width != 8)
    throw std::invalid_argument(
        "ChannelConfig: byte-lane channels require lane.width == 8");
}

Channel::Channel(const ChannelConfig& cfg,
                 std::unique_ptr<dbi::Encoder> encoder)
    : cfg_(cfg), encoder_(std::move(encoder)) {
  cfg_.validate();
  if (!encoder_) throw std::invalid_argument("Channel: null encoder");
  lane_state_.assign(static_cast<std::size_t>(cfg_.lanes),
                     dbi::BusState::all_ones(cfg_.lane));
}

Channel::Channel(const ChannelConfig& cfg, dbi::Scheme scheme,
                 const dbi::CostWeights& w)
    : cfg_(cfg) {
  cfg_.validate();
  session_ = std::make_unique<dbi::Session>(channel_spec(cfg_, scheme, w));
}

dbi::Burst Channel::lane_burst(std::span<const std::uint8_t> data,
                               int lane) const {
  dbi::Burst burst(cfg_.lane);
  for (int beat = 0; beat < cfg_.lane.burst_length; ++beat)
    burst.set_word(beat,
                   data[static_cast<std::size_t>(beat * cfg_.lanes + lane)]);
  return burst;
}

std::vector<dbi::EncodedBurst> Channel::write(
    std::span<const std::uint8_t> data) {
  if (session_) {
    std::vector<dbi::EncodedBurst> encoded;
    (void)session_->write(data, &encoded);
    return encoded;
  }

  if (static_cast<std::int64_t>(data.size()) != cfg_.bytes_per_write())
    throw std::invalid_argument(
        "Channel::write: expected " + std::to_string(cfg_.bytes_per_write()) +
        " bytes, got " + std::to_string(data.size()));

  std::vector<dbi::EncodedBurst> encoded;
  encoded.reserve(static_cast<std::size_t>(cfg_.lanes));
  for (int lane = 0; lane < cfg_.lanes; ++lane) {
    const dbi::Burst burst = lane_burst(data, lane);
    dbi::BusState& state = lane_state_[static_cast<std::size_t>(lane)];
    if (cfg_.reset_state_per_write)
      state = dbi::BusState::all_ones(cfg_.lane);

    dbi::EncodedBurst e = encoder_->encode(burst, state);
    stats_.add(e.stats(state));
    state = e.final_state();
    encoded.push_back(std::move(e));
  }
  ++stats_.writes;
  return encoded;
}

ChannelStats Channel::write_stream(std::span<const std::uint8_t> data,
                                   engine::ShardPool* pool) {
  if (session_) return session_->write_stream(data, pool);

  // Scalar virtual path: a caller-supplied encoder may carry internal
  // state (e.g. the noisy wrapper's PRNG), so lanes are never sharded
  // across workers here; the stats are identical to the engine route.
  const auto bpw = static_cast<std::size_t>(cfg_.bytes_per_write());
  if (data.size() % bpw != 0)
    throw std::invalid_argument(
        "Channel::write_stream: data size must be a multiple of " +
        std::to_string(bpw) + " bytes, got " + std::to_string(data.size()));
  const auto writes = static_cast<std::int64_t>(data.size() / bpw);
  if (writes == 0) return {};

  ChannelStats delta;
  delta.writes = writes;
  delta.bursts = writes * cfg_.lanes;
  for (int lane = 0; lane < cfg_.lanes; ++lane) {
    dbi::BusState& state = lane_state_[static_cast<std::size_t>(lane)];
    for (std::int64_t w = 0; w < writes; ++w) {
      const dbi::Burst burst =
          lane_burst(data.subspan(static_cast<std::size_t>(w) * bpw, bpw),
                     lane);
      if (cfg_.reset_state_per_write)
        state = dbi::BusState::all_ones(cfg_.lane);
      const dbi::EncodedBurst e = encoder_->encode(burst, state);
      const dbi::BurstStats s = e.stats(state);
      delta.zeros += s.zeros;
      delta.transitions += s.transitions;
      state = e.final_state();
    }
  }
  stats_ += delta;
  return delta;
}

void Channel::reset() {
  if (session_) {
    session_->reset();
    return;
  }
  lane_state_.assign(static_cast<std::size_t>(cfg_.lanes),
                     dbi::BusState::all_ones(cfg_.lane));
  stats_ = ChannelStats{};
}

}  // namespace dbi::workload
