#include "workload/channel.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace dbi::workload {

void ChannelConfig::validate() const {
  lane.validate();
  if (lanes < 1 || lanes > 64)
    throw std::invalid_argument("ChannelConfig: lanes must be in [1,64]");
  if (lane.width != 8)
    throw std::invalid_argument(
        "ChannelConfig: byte-lane channels require lane.width == 8");
}

Channel::Channel(const ChannelConfig& cfg,
                 std::unique_ptr<dbi::Encoder> encoder)
    : cfg_(cfg), encoder_(std::move(encoder)) {
  cfg_.validate();
  if (!encoder_) throw std::invalid_argument("Channel: null encoder");
  lane_state_.assign(static_cast<std::size_t>(cfg_.lanes),
                     dbi::BusState::all_ones(cfg_.lane));
}

Channel::Channel(const ChannelConfig& cfg, dbi::Scheme scheme,
                 const dbi::CostWeights& w)
    : cfg_(cfg),
      engine_(std::make_unique<engine::BatchEncoder>(scheme, w)) {
  cfg_.validate();
  lane_state_.assign(static_cast<std::size_t>(cfg_.lanes),
                     dbi::BusState::all_ones(cfg_.lane));
}

dbi::Burst Channel::lane_burst(std::span<const std::uint8_t> data,
                               int lane) const {
  dbi::Burst burst(cfg_.lane);
  for (int beat = 0; beat < cfg_.lane.burst_length; ++beat)
    burst.set_word(beat,
                   data[static_cast<std::size_t>(beat * cfg_.lanes + lane)]);
  return burst;
}

std::vector<dbi::EncodedBurst> Channel::write(
    std::span<const std::uint8_t> data) {
  if (data.size() != static_cast<std::size_t>(cfg_.bytes_per_write()))
    throw std::invalid_argument(
        "Channel::write: expected " + std::to_string(cfg_.bytes_per_write()) +
        " bytes, got " + std::to_string(data.size()));

  std::vector<dbi::EncodedBurst> encoded;
  encoded.reserve(static_cast<std::size_t>(cfg_.lanes));
  for (int lane = 0; lane < cfg_.lanes; ++lane) {
    const dbi::Burst burst = lane_burst(data, lane);
    dbi::BusState& state = lane_state_[static_cast<std::size_t>(lane)];
    if (cfg_.reset_state_per_write)
      state = dbi::BusState::all_ones(cfg_.lane);

    if (engine_) {
      const engine::BurstResult r = engine_->encode(burst, state);
      stats_.zeros += r.stats.zeros;
      stats_.transitions += r.stats.transitions;
      encoded.push_back(engine_->materialize(burst, r));
    } else {
      dbi::EncodedBurst e = encoder_->encode(burst, state);
      const dbi::BurstStats s = e.stats(state);
      stats_.zeros += s.zeros;
      stats_.transitions += s.transitions;
      state = e.final_state();
      encoded.push_back(std::move(e));
    }
  }
  ++stats_.writes;
  return encoded;
}

ChannelStats Channel::write_stream(std::span<const std::uint8_t> data,
                                   engine::ShardPool* pool) {
  const auto bpw = static_cast<std::size_t>(cfg_.bytes_per_write());
  if (data.size() % bpw != 0)
    throw std::invalid_argument(
        "Channel::write_stream: data size must be a multiple of " +
        std::to_string(bpw) + " bytes, got " + std::to_string(data.size()));
  const auto writes = static_cast<std::int64_t>(data.size() / bpw);
  if (writes == 0) return {};

  const int lanes = cfg_.lanes;
  const int bl = cfg_.lane.burst_length;

  // Wide fast path: for up to 8 byte lanes the beat-major interleave IS
  // the engine's packed wide layout (lane l = byte group l of a
  // width-8*lanes bus), so the engine encodes the stream in place — no
  // per-lane gather at all — and a pool shards (lane, group) units.
  // Blocked so BurstStats's int counters never overflow per call.
  if (engine_ && !cfg_.reset_state_per_write &&
      lanes * 8 <= dbi::WideBusConfig::kMaxWidth) {
    const dbi::WideBusConfig wcfg{8 * lanes, bl};
    constexpr std::int64_t kWideBlockWrites = 1 << 16;
    ChannelStats delta;
    delta.writes = writes;
    for (std::int64_t w0 = 0; w0 < writes; w0 += kWideBlockWrites) {
      const std::int64_t block = std::min(kWideBlockWrites, writes - w0);
      engine::WideLaneTask task{
          data.subspan(static_cast<std::size_t>(w0) * bpw,
                       static_cast<std::size_t>(block) * bpw),
          lane_state_, nullptr, {}};
      engine_->encode_wide_lanes(wcfg, std::span<engine::WideLaneTask>(&task, 1),
                                 pool);
      delta.zeros += task.totals.zeros;
      delta.transitions += task.totals.transitions;
    }
    stats_ += delta;
    return delta;
  }
  // Accumulated in 64 bits: one call may stream far more line-beats
  // than BurstStats's int fields can count.
  struct LaneTotals {
    std::int64_t zeros = 0;
    std::int64_t transitions = 0;
  };
  std::vector<LaneTotals> lane_totals(static_cast<std::size_t>(lanes));

  // Gathered block size: bounds the per-lane scratch at O(block) words
  // regardless of how much data one call streams.
  constexpr std::int64_t kBlockWrites = 1024;

  auto encode_lane_stream = [&](int lane) {
    // Gather this lane's bytes out of the beat-major interleave into a
    // reused flat word buffer, one block of writes at a time, and push
    // each block through the engine.
    std::vector<dbi::Word> words(
        static_cast<std::size_t>(std::min(writes, kBlockWrites)) *
        static_cast<std::size_t>(bl));
    dbi::BusState& state = lane_state_[static_cast<std::size_t>(lane)];
    LaneTotals& totals = lane_totals[static_cast<std::size_t>(lane)];
    auto add = [&totals](const dbi::BurstStats& s) {
      totals.zeros += s.zeros;
      totals.transitions += s.transitions;
    };

    for (std::int64_t w0 = 0; w0 < writes; w0 += kBlockWrites) {
      const std::int64_t block = std::min(kBlockWrites, writes - w0);
      for (std::int64_t wi = 0; wi < block; ++wi) {
        const std::size_t base = static_cast<std::size_t>(w0 + wi) * bpw;
        for (int beat = 0; beat < bl; ++beat)
          words[static_cast<std::size_t>(wi * bl + beat)] =
              data[base + static_cast<std::size_t>(beat * lanes + lane)];
      }
      const std::span<const dbi::Word> block_words(
          words.data(), static_cast<std::size_t>(block * bl));

      if (cfg_.reset_state_per_write || !engine_) {
        // Per-write boundaries (or the virtual path) need burst-at-a-time
        // state handling; still no EncodedBurst materialisation on the
        // engine route.
        for (std::int64_t wi = 0; wi < block; ++wi) {
          if (cfg_.reset_state_per_write)
            state = dbi::BusState::all_ones(cfg_.lane);
          const std::span<const dbi::Word> burst_words =
              block_words.subspan(static_cast<std::size_t>(wi * bl),
                                  static_cast<std::size_t>(bl));
          if (engine_) {
            add(engine_->encode_words(burst_words, cfg_.lane, state));
          } else {
            const dbi::Burst burst(cfg_.lane, burst_words);
            const dbi::EncodedBurst e = encoder_->encode(burst, state);
            add(e.stats(state));
            state = e.final_state();
          }
        }
      } else {
        add(engine_->encode_words(block_words, cfg_.lane, state));
      }
    }
  };

  // Only the engine route is safe to shard: a caller-supplied scalar
  // encoder may carry internal state (e.g. the noisy wrapper's PRNG)
  // that must not be hit from several workers at once.
  if (pool && engine_) {
    pool->run(lanes, encode_lane_stream);
  } else {
    for (int lane = 0; lane < lanes; ++lane) encode_lane_stream(lane);
  }

  ChannelStats delta;
  delta.writes = writes;
  for (const LaneTotals& s : lane_totals) {
    delta.zeros += s.zeros;
    delta.transitions += s.transitions;
  }
  stats_ += delta;
  return delta;
}

void Channel::reset() {
  lane_state_.assign(static_cast<std::size_t>(cfg_.lanes),
                     dbi::BusState::all_ones(cfg_.lane));
  stats_ = ChannelStats{};
}

}  // namespace dbi::workload
