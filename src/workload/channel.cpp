#include "workload/channel.hpp"

#include <stdexcept>
#include <string>

namespace dbi::workload {

void ChannelConfig::validate() const {
  lane.validate();
  if (lanes < 1 || lanes > 64)
    throw std::invalid_argument("ChannelConfig: lanes must be in [1,64]");
  if (lane.width != 8)
    throw std::invalid_argument(
        "ChannelConfig: byte-lane channels require lane.width == 8");
}

Channel::Channel(const ChannelConfig& cfg,
                 std::unique_ptr<dbi::Encoder> encoder)
    : cfg_(cfg), encoder_(std::move(encoder)) {
  cfg_.validate();
  if (!encoder_) throw std::invalid_argument("Channel: null encoder");
  lane_state_.assign(static_cast<std::size_t>(cfg_.lanes),
                     dbi::BusState::all_ones(cfg_.lane));
}

std::vector<dbi::EncodedBurst> Channel::write(
    std::span<const std::uint8_t> data) {
  if (data.size() != static_cast<std::size_t>(cfg_.bytes_per_write()))
    throw std::invalid_argument(
        "Channel::write: expected " + std::to_string(cfg_.bytes_per_write()) +
        " bytes, got " + std::to_string(data.size()));

  std::vector<dbi::EncodedBurst> encoded;
  encoded.reserve(static_cast<std::size_t>(cfg_.lanes));
  for (int lane = 0; lane < cfg_.lanes; ++lane) {
    dbi::Burst burst(cfg_.lane);
    for (int beat = 0; beat < cfg_.lane.burst_length; ++beat)
      burst.set_word(beat, data[static_cast<std::size_t>(
                                beat * cfg_.lanes + lane)]);

    dbi::BusState& state = lane_state_[static_cast<std::size_t>(lane)];
    if (cfg_.reset_state_per_write)
      state = dbi::BusState::all_ones(cfg_.lane);

    dbi::EncodedBurst e = encoder_->encode(burst, state);
    const dbi::BurstStats s = e.stats(state);
    stats_.zeros += s.zeros;
    stats_.transitions += s.transitions;
    state = e.final_state();
    encoded.push_back(std::move(e));
  }
  ++stats_.writes;
  return encoded;
}

void Channel::reset() {
  lane_state_.assign(static_cast<std::size_t>(cfg_.lanes),
                     dbi::BusState::all_ones(cfg_.lane));
  stats_ = ChannelStats{};
}

}  // namespace dbi::workload
