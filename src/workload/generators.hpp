// Burst sources: streams of payload bursts with different statistics.
//
// The paper evaluates uniform random bursts (Figs. 3/4/7/8). The other
// sources model traffic classes that real memory channels carry —
// pointer/counter-like data, ASCII text, floating-point arrays, sparse
// (zero-dominated) pages, bit-correlated sensor streams — and drive the
// extension experiments and the realistic-workload examples.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "core/burst.hpp"
#include "core/types.hpp"

namespace dbi::workload {

/// An infinite stream of bursts with fixed geometry.
class BurstSource {
 public:
  virtual ~BurstSource() = default;
  BurstSource(const BurstSource&) = delete;
  BurstSource& operator=(const BurstSource&) = delete;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] const dbi::BusConfig& config() const { return cfg_; }

  /// Next burst in the stream.
  [[nodiscard]] virtual dbi::Burst next() = 0;

 protected:
  explicit BurstSource(const dbi::BusConfig& cfg) : cfg_(cfg) {
    cfg_.validate();
  }

 private:
  dbi::BusConfig cfg_;
};

/// Every payload bit i.i.d. uniform — the distribution of the paper's
/// 10 000-burst experiments.
[[nodiscard]] std::unique_ptr<BurstSource> make_uniform_source(
    const dbi::BusConfig& cfg, std::uint64_t seed);

/// Every payload bit i.i.d. Bernoulli(p_one).
[[nodiscard]] std::unique_ptr<BurstSource> make_biased_source(
    const dbi::BusConfig& cfg, double p_one, std::uint64_t seed);

/// Each word is all-zero with probability p_zero_word, otherwise
/// uniform — models sparse / zero-initialised pages.
[[nodiscard]] std::unique_ptr<BurstSource> make_sparse_source(
    const dbi::BusConfig& cfg, double p_zero_word, std::uint64_t seed);

/// Consecutive words follow an incrementing counter (addresses,
/// indices, loop iterators). Low bits toggle often, high bits rarely.
[[nodiscard]] std::unique_ptr<BurstSource> make_counter_source(
    const dbi::BusConfig& cfg, std::uint64_t start = 0,
    std::uint64_t stride = 1);

/// Gray-coded counter: exactly one payload bit flips per beat.
[[nodiscard]] std::unique_ptr<BurstSource> make_gray_counter_source(
    const dbi::BusConfig& cfg, std::uint64_t start = 0);

/// Walking-ones pattern (classic interface stress pattern).
[[nodiscard]] std::unique_ptr<BurstSource> make_walking_ones_source(
    const dbi::BusConfig& cfg);

/// English-like ASCII bytes (letter-frequency sampled, word lengths
/// geometric). Requires width == 8.
[[nodiscard]] std::unique_ptr<BurstSource> make_text_source(
    const dbi::BusConfig& cfg, std::uint64_t seed);

/// IEEE-754 float32 samples of a slowly drifting random walk, streamed
/// byte-wise (little endian). Requires width == 8. Models numeric
/// arrays written by compute kernels (the paper's GPU motivation).
[[nodiscard]] std::unique_ptr<BurstSource> make_float_source(
    const dbi::BusConfig& cfg, std::uint64_t seed);

/// Per-line first-order Markov bits: each line keeps its previous value
/// with probability p_stay (temporal correlation knob).
[[nodiscard]] std::unique_ptr<BurstSource> make_markov_source(
    const dbi::BusConfig& cfg, double p_stay, std::uint64_t seed);

/// Framebuffer-style traffic (the paper's GPU motivation): a stream of
/// ARGB8888 pixels along a shaded scanline — smooth per-channel
/// gradients plus dithering noise, alpha saturated at 0xFF. Requires
/// width == 8.
[[nodiscard]] std::unique_ptr<BurstSource> make_framebuffer_source(
    const dbi::BusConfig& cfg, std::uint64_t seed);

/// Neural-network weight traffic: float32 values ~N(0, 0.05) streamed
/// byte-wise — tiny magnitudes mean near-constant exponent bytes and
/// noisy mantissas, a structure DBI exploits very differently per
/// byte lane. Requires width == 8.
[[nodiscard]] std::unique_ptr<BurstSource> make_tensor_source(
    const dbi::BusConfig& cfg, std::uint64_t seed);

}  // namespace dbi::workload
