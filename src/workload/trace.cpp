#include "workload/trace.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/byte_utils.hpp"

namespace dbi::workload {

BurstTrace::BurstTrace(const dbi::BusConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
}

BurstTrace BurstTrace::collect(BurstSource& source, std::int64_t count) {
  if (count < 0) throw std::invalid_argument("BurstTrace: negative count");
  BurstTrace trace(source.config());
  trace.bursts_.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) trace.push(source.next());
  return trace;
}

void BurstTrace::push(dbi::Burst burst) {
  if (!(burst.config() == cfg_))
    throw std::invalid_argument("BurstTrace: burst geometry mismatch");
  bursts_.push_back(std::move(burst));
}

TraceStats BurstTrace::stats() const {
  TraceStats s;
  s.bursts = static_cast<std::int64_t>(bursts_.size());
  for (const dbi::Burst& b : bursts_) {
    s.payload_bits += cfg_.width * cfg_.burst_length;
    s.payload_zeros += b.payload_zeros();
    dbi::Word last = cfg_.dq_mask();  // all-ones boundary
    for (int i = 0; i < b.length(); ++i) {
      s.raw_transitions += dbi::hamming(last, b.word(i), cfg_);
      last = b.word(i);
    }
  }
  return s;
}

void BurstTrace::save(std::ostream& os) const {
  os << "dbi-trace v1 " << cfg_.width << ' ' << cfg_.burst_length << '\n';
  os << std::hex;
  for (const dbi::Burst& b : bursts_) {
    for (int i = 0; i < b.length(); ++i) {
      if (i) os << ' ';
      os << b.word(i);
    }
    os << '\n';
  }
  os << std::dec;
}

dbi::BusConfig parse_text_trace_header(std::istream& is) {
  std::string header_line;
  if (!std::getline(is, header_line))
    throw std::runtime_error("trace text: empty input (missing header)");
  std::istringstream hs(header_line);
  std::string magic, version;
  dbi::BusConfig cfg;
  if (!(hs >> magic >> version >> cfg.width >> cfg.burst_length) ||
      magic != "dbi-trace" || version != "v1")
    throw std::runtime_error(
        "trace text: bad header \"" + header_line +
        "\" (expected \"dbi-trace v1 <width> <burst_length>\")");
  std::string extra;
  if (hs >> extra)
    throw std::runtime_error("trace text: trailing token \"" + extra +
                             "\" after header");
  try {
    cfg.validate();
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("trace text: bad geometry: ") +
                             e.what());
  }
  return cfg;
}

bool parse_text_trace_line(const std::string& line, const dbi::BusConfig& cfg,
                           std::int64_t line_no,
                           std::vector<dbi::Word>& words) {
  words.clear();
  const auto context = [line_no] {
    return "trace text line " + std::to_string(line_no) + ": ";
  };
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                               line[i] == '\r'))
      ++i;
    if (i >= line.size()) break;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t' &&
           line[j] != '\r')
      ++j;
    const std::string_view tok(line.data() + i, j - i);
    std::uint64_t value = 0;
    const auto [end, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), value, 16);
    if (ec == std::errc::result_out_of_range ||
        value > static_cast<std::uint64_t>(cfg.dq_mask()))
      throw std::runtime_error(context() + "word \"" + std::string(tok) +
                               "\" does not fit a width-" +
                               std::to_string(cfg.width) + " bus");
    if (ec != std::errc{} || end != tok.data() + tok.size())
      throw std::runtime_error(context() + "\"" + std::string(tok) +
                               "\" is not a hex word");
    if (static_cast<int>(words.size()) == cfg.burst_length)
      throw std::runtime_error(
          context() + "more than " + std::to_string(cfg.burst_length) +
          " words on one line");
    words.push_back(static_cast<dbi::Word>(value));
    i = j;
  }
  if (words.empty()) return false;
  if (static_cast<int>(words.size()) != cfg.burst_length)
    throw std::runtime_error(
        context() + "expected " + std::to_string(cfg.burst_length) +
        " words, got " + std::to_string(words.size()) +
        " (truncated line?)");
  return true;
}

BurstTrace BurstTrace::load(std::istream& is) {
  const dbi::BusConfig cfg = parse_text_trace_header(is);
  BurstTrace trace(cfg);
  std::string line;
  std::vector<dbi::Word> words;
  std::int64_t line_no = 1;  // the header was line 1
  while (std::getline(is, line)) {
    ++line_no;
    if (parse_text_trace_line(line, cfg, line_no, words))
      trace.push(dbi::Burst(cfg, words));
  }
  return trace;
}

}  // namespace dbi::workload
