#include "workload/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/byte_utils.hpp"

namespace dbi::workload {

BurstTrace::BurstTrace(const dbi::BusConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
}

BurstTrace BurstTrace::collect(BurstSource& source, std::int64_t count) {
  if (count < 0) throw std::invalid_argument("BurstTrace: negative count");
  BurstTrace trace(source.config());
  trace.bursts_.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) trace.push(source.next());
  return trace;
}

void BurstTrace::push(dbi::Burst burst) {
  if (!(burst.config() == cfg_))
    throw std::invalid_argument("BurstTrace: burst geometry mismatch");
  bursts_.push_back(std::move(burst));
}

TraceStats BurstTrace::stats() const {
  TraceStats s;
  s.bursts = static_cast<std::int64_t>(bursts_.size());
  for (const dbi::Burst& b : bursts_) {
    s.payload_bits += cfg_.width * cfg_.burst_length;
    s.payload_zeros += b.payload_zeros();
    dbi::Word last = cfg_.dq_mask();  // all-ones boundary
    for (int i = 0; i < b.length(); ++i) {
      s.raw_transitions += dbi::hamming(last, b.word(i), cfg_);
      last = b.word(i);
    }
  }
  return s;
}

void BurstTrace::save(std::ostream& os) const {
  os << "dbi-trace v1 " << cfg_.width << ' ' << cfg_.burst_length << '\n';
  os << std::hex;
  for (const dbi::Burst& b : bursts_) {
    for (int i = 0; i < b.length(); ++i) {
      if (i) os << ' ';
      os << b.word(i);
    }
    os << '\n';
  }
  os << std::dec;
}

BurstTrace BurstTrace::load(std::istream& is) {
  std::string magic, version;
  dbi::BusConfig cfg;
  if (!(is >> magic >> version >> cfg.width >> cfg.burst_length) ||
      magic != "dbi-trace" || version != "v1")
    throw std::runtime_error("BurstTrace::load: bad header");
  BurstTrace trace(cfg);
  std::string line;
  std::getline(is, line);  // consume rest of header line
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    ls >> std::hex;
    std::vector<dbi::Word> words;
    dbi::Word w = 0;
    while (ls >> w) words.push_back(w);
    if (ls.fail() && !ls.eof())
      throw std::runtime_error("BurstTrace::load: bad word");
    trace.push(dbi::Burst(cfg, words));
  }
  return trace;
}

}  // namespace dbi::workload
