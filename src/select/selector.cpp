#include "select/selector.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/observer.hpp"
#include "trace/format.hpp"

namespace dbi::select {

namespace {

/// Feature count of the predicted-mode linear model:
/// [1, toggle_density, zero_mass, entropy].
constexpr int kFeatures = 4;

/// Ridge floor that keeps the normal equations solvable before the
/// probe history spans the feature space.
constexpr double kRidge = 1e-6;

std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Solves the 4x4 system A w = b in place (partial-pivot Gaussian
/// elimination). Returns false when A is numerically singular.
bool solve4(double a[kFeatures][kFeatures], double b[kFeatures],
            double w[kFeatures]) {
  int perm[kFeatures] = {0, 1, 2, 3};
  for (int col = 0; col < kFeatures; ++col) {
    int pivot = col;
    for (int r = col + 1; r < kFeatures; ++r)
      if (std::fabs(a[perm[r]][col]) > std::fabs(a[perm[pivot]][col]))
        pivot = r;
    std::swap(perm[col], perm[pivot]);
    const double p = a[perm[col]][col];
    if (std::fabs(p) < 1e-30) return false;
    for (int r = col + 1; r < kFeatures; ++r) {
      const double m = a[perm[r]][col] / p;
      if (m == 0.0) continue;
      for (int c = col; c < kFeatures; ++c) a[perm[r]][c] -= m * a[perm[col]][c];
      b[perm[r]] -= m * b[perm[col]];
    }
  }
  for (int row = kFeatures - 1; row >= 0; --row) {
    double acc = b[perm[row]];
    for (int c = row + 1; c < kFeatures; ++c) acc -= a[perm[row]][c] * w[c];
    w[row] = acc / a[perm[row]][row];
  }
  return true;
}

}  // namespace

/// One candidate scheme's engines, scratch line states, running totals
/// and (predicted mode) fitted cost model.
struct ChunkSelector::Candidate {
  Candidate(Scheme s, const CostWeights& w) : scheme(s), engine(s, w) {}

  Scheme scheme;
  engine::BatchEncoder engine;
  std::vector<dbi::BusState> states;  // scratch; committed_ copied in
  std::unique_ptr<engine::StreamEncoder> enc;

  std::int64_t blocks_chosen = 0;
  std::int64_t bursts_chosen = 0;
  std::int64_t trial_blocks = 0;
  double trial_cost = 0.0;
  double chosen_cost = 0.0;

  // Last trial's outcome (valid between trial_all and commit).
  std::int64_t last_d_zeros = 0;
  std::int64_t last_d_transitions = 0;
  std::span<const engine::BurstResult> last_results;

  // Predicted-mode linear model: cost-per-burst ~ w . features, fitted
  // by ridge normal equations over the probe history.
  double xtx[kFeatures][kFeatures] = {};
  double xty[kFeatures] = {};
  double weights[kFeatures] = {};
  std::int64_t samples = 0;
  bool fitted = false;

  obs::Counter obs_chunks;
  obs::Counter obs_bursts;

  [[nodiscard]] double predict(const double f[kFeatures]) const {
    double y = 0.0;
    for (int i = 0; i < kFeatures; ++i) y += weights[i] * f[i];
    return y;
  }

  void add_sample(const double f[kFeatures], double cost_per_burst) {
    for (int i = 0; i < kFeatures; ++i) {
      for (int j = 0; j < kFeatures; ++j) xtx[i][j] += f[i] * f[j];
      xty[i] += f[i] * cost_per_burst;
    }
    ++samples;
  }

  void refit() {
    double a[kFeatures][kFeatures];
    double b[kFeatures];
    double trace = 0.0;
    for (int i = 0; i < kFeatures; ++i) trace += xtx[i][i];
    const double ridge = kRidge * std::max(trace / kFeatures, 1.0);
    for (int i = 0; i < kFeatures; ++i) {
      for (int j = 0; j < kFeatures; ++j) a[i][j] = xtx[i][j];
      a[i][i] += ridge;
      b[i] = xty[i];
    }
    double solved[kFeatures];
    if (solve4(a, b, solved)) {
      std::memcpy(weights, solved, sizeof(weights));
    } else {
      // Intercept-only fallback: the mean probed cost per burst.
      weights[0] = samples > 0 ? xty[0] / static_cast<double>(samples) : 0.0;
      weights[1] = weights[2] = weights[3] = 0.0;
    }
    fitted = true;
  }
};

ChunkSelector::ChunkSelector(const Config& cfg)
    : policy_(cfg.policy), geometry_(cfg.geometry), weights_(cfg.weights) {
  policy_.validate();
  if (!policy_.adaptive())
    throw std::invalid_argument(
        "ChunkSelector: the policy must be adaptive (" + policy_.describe() +
        " is not)");
  geometry_.validate();
  weights_.validate();
  obs_ = cfg.obs;

  // Candidate trials are an implementation detail of one logical encode
  // pass, so the per-candidate stream encoders do not report into the
  // observer (chunk counts would inflate by the candidate count); the
  // selector publishes its own dbi_select_* counters instead.
  stream_opt_.lanes = cfg.lanes;
  stream_opt_.reset_state_per_burst = cfg.reset_state_per_burst;
  stream_opt_.pool = cfg.pool;
  stream_opt_.obs = nullptr;

  const std::size_t units =
      static_cast<std::size_t>(cfg.lanes) *
      static_cast<std::size_t>(geometry_.is_wide() ? geometry_.groups() : 1);

  candidates_.reserve(policy_.candidates().size());
  for (Scheme s : policy_.candidates()) {
    auto c = std::make_unique<Candidate>(s, weights_);
    if (cfg.kernel) c->engine.set_kernel(*cfg.kernel);
    c->states.resize(units);
    if (geometry_.is_wide())
      c->enc = std::make_unique<engine::StreamEncoder>(
          c->engine, geometry_.wide_bus(), stream_opt_,
          std::span<dbi::BusState>(c->states));
    else
      c->enc = std::make_unique<engine::StreamEncoder>(
          c->engine, geometry_.bus(), stream_opt_,
          std::span<dbi::BusState>(c->states));
    c->enc->reset();  // all-ones boundary into the caller-owned states
    if (obs_) {
      const std::string label =
          "scheme=\"" + std::string(scheme_slug(s)) + "\"";
      c->obs_chunks =
          obs_->registry().counter("dbi_select_chunks_total", label);
      c->obs_bursts =
          obs_->registry().counter("dbi_select_bursts_total", label);
    }
    candidates_.push_back(std::move(c));
  }
  committed_ = candidates_.front()->states;
  if (cfg.kernel) decoder_.set_kernel(*cfg.kernel);
}

ChunkSelector::~ChunkSelector() = default;

double ChunkSelector::block_cost(Candidate& c,
                                 std::span<const std::uint8_t> payload,
                                 std::span<const engine::BurstResult> results,
                                 std::int64_t d_zeros,
                                 std::int64_t d_transitions) {
  switch (policy_.cost_model()) {
    case CostModel::kTransitions:
      return static_cast<double>(d_transitions);
    case CostModel::kEnergy:
      return weights_.alpha * static_cast<double>(d_transitions) +
             weights_.beta * static_cast<double>(d_zeros);
    case CostModel::kBytes: {
      // Materialise the transmitted stream (payload with the candidate's
      // inversions applied) and cost it as the trace writer would store
      // it: zero-run RLE of the wire bytes plus the mask stream.
      (void)c;
      wire_.assign(payload.begin(), payload.end());
      mask_words_.resize(results.size());
      for (std::size_t i = 0; i < results.size(); ++i)
        mask_words_[i] = results[i].invert_mask;
      if (geometry_.is_wide())
        decoder_.apply_packed_wide(wire_, mask_words_, geometry_.wide_bus(),
                                   wire_, stream_opt_.pool);
      else
        decoder_.apply_packed(wire_, mask_words_, geometry_.bus(), wire_,
                              stream_opt_.pool);
      rle_scratch_.clear();
      trace::rle_compress(wire_, rle_scratch_);
      double bytes = static_cast<double>(rle_scratch_.size());
      wire_.resize(mask_words_.size() * trace::kMaskBytesPerBurst);
      for (std::size_t i = 0; i < mask_words_.size(); ++i)
        for (std::size_t b = 0; b < trace::kMaskBytesPerBurst; ++b)
          wire_[i * trace::kMaskBytesPerBurst + b] =
              static_cast<std::uint8_t>(mask_words_[i] >> (8 * b));
      rle_scratch_.clear();
      trace::rle_compress(wire_, rle_scratch_);
      bytes += static_cast<double>(rle_scratch_.size());
      return bytes;
    }
  }
  return static_cast<double>(d_transitions);
}

std::size_t ChunkSelector::trial_all(std::int64_t first_burst,
                                     std::span<const std::uint8_t> payload,
                                     std::size_t burst_count,
                                     std::vector<double>& costs) {
  costs.resize(candidates_.size());
  std::size_t winner = 0;
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    Candidate& c = *candidates_[i];
    std::copy(committed_.begin(), committed_.end(), c.states.begin());
    const std::int64_t z0 = c.enc->zeros();
    const std::int64_t t0 = c.enc->transitions();
    c.last_results =
        c.enc->encode_chunk(first_burst, payload, burst_count, true);
    c.last_d_zeros = c.enc->zeros() - z0;
    c.last_d_transitions = c.enc->transitions() - t0;
    costs[i] = block_cost(c, payload, c.last_results, c.last_d_zeros,
                          c.last_d_transitions);
    c.trial_blocks += 1;
    c.trial_cost += costs[i];
    if (costs[i] < costs[winner]) winner = i;
  }
  return winner;
}

void ChunkSelector::compute_features(std::span<const std::uint8_t> payload,
                                     double features[kFeatures]) const {
  features[0] = 1.0;
  features[1] = features[2] = features[3] = 0.0;
  const std::size_t n = payload.size();
  if (n == 0) return;

  std::uint64_t hist[256] = {};
  std::size_t zero_bytes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ++hist[payload[i]];
    zero_bytes += payload[i] == 0 ? 1 : 0;
  }
  features[2] = static_cast<double>(zero_bytes) / static_cast<double>(n);

  // Toggle density: mean bit flips between consecutive beats of the
  // same line (stride = bytes per beat in both layouts).
  const auto stride = static_cast<std::size_t>(geometry_.bytes_per_beat());
  if (n > stride) {
    std::uint64_t toggles = 0;
    for (std::size_t i = stride; i < n; ++i)
      toggles += static_cast<std::uint64_t>(
          std::popcount(static_cast<unsigned>(payload[i] ^ payload[i - stride])));
    features[1] = static_cast<double>(toggles) /
                  (8.0 * static_cast<double>(n - stride));
  }

  double entropy = 0.0;
  for (const std::uint64_t count : hist) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / static_cast<double>(n);
    entropy -= p * std::log2(p);
  }
  features[3] = entropy / 8.0;
}

void ChunkSelector::commit(Candidate& c, std::size_t burst_count, double cost,
                           std::int64_t d_zeros, std::int64_t d_transitions) {
  std::copy(c.states.begin(), c.states.end(), committed_.begin());
  c.blocks_chosen += 1;
  c.bursts_chosen += static_cast<std::int64_t>(burst_count);
  c.chosen_cost += cost;
  blocks_ += 1;
  bursts_ += static_cast<std::int64_t>(burst_count);
  zeros_ += d_zeros;
  transitions_ += d_transitions;
  selected_cost_ += cost;
  if (obs_) {
    c.obs_chunks.inc();
    c.obs_bursts.add(static_cast<std::uint64_t>(burst_count));
  }
}

ChunkSelector::BlockResult ChunkSelector::encode_block(
    std::int64_t first_burst, std::span<const std::uint8_t> payload,
    std::size_t burst_count) {
  const bool predicted =
      policy_.mode() == SchemePolicy::Mode::kAdaptivePredicted;
  const bool probe =
      !predicted || blocks_ % static_cast<std::int64_t>(
                                  policy_.probe_interval()) ==
                        0;

  if (probe) {
    double features[kFeatures];
    if (predicted) compute_features(payload, features);
    const std::size_t winner =
        trial_all(first_burst, payload, burst_count, trial_costs_);
    if (predicted) {
      // Score the pre-refit model against the exact argmin, then fold
      // the probe into every candidate's history and re-fit.
      bool all_fitted = true;
      for (const auto& c : candidates_) all_fitted = all_fitted && c->fitted;
      if (all_fitted) {
        std::size_t guessed = 0;
        for (std::size_t i = 1; i < candidates_.size(); ++i)
          if (candidates_[i]->predict(features) <
              candidates_[guessed]->predict(features))
            guessed = i;
        probes_ += 1;
        if (guessed == winner) probe_hits_ += 1;
      }
      for (std::size_t i = 0; i < candidates_.size(); ++i) {
        candidates_[i]->add_sample(
            features,
            trial_costs_[i] / static_cast<double>(std::max<std::size_t>(
                                  burst_count, 1)));
        candidates_[i]->refit();
      }
    }
    Candidate& w = *candidates_[winner];
    commit(w, burst_count, trial_costs_[winner], w.last_d_zeros,
           w.last_d_transitions);
    return {w.scheme, w.last_results};
  }

  // Predicted fast path: score features, encode only the guessed
  // winner. Ties (an unfitted model predicts 0 for everyone) break
  // toward the earlier candidate, keeping the run deterministic.
  double features[kFeatures];
  compute_features(payload, features);
  std::size_t winner = 0;
  for (std::size_t i = 1; i < candidates_.size(); ++i)
    if (candidates_[i]->predict(features) <
        candidates_[winner]->predict(features))
      winner = i;

  Candidate& w = *candidates_[winner];
  std::copy(committed_.begin(), committed_.end(), w.states.begin());
  const std::int64_t z0 = w.enc->zeros();
  const std::int64_t t0 = w.enc->transitions();
  w.last_results = w.enc->encode_chunk(first_burst, payload, burst_count, true);
  w.last_d_zeros = w.enc->zeros() - z0;
  w.last_d_transitions = w.enc->transitions() - t0;
  const double cost = block_cost(w, payload, w.last_results, w.last_d_zeros,
                                 w.last_d_transitions);
  commit(w, burst_count, cost, w.last_d_zeros, w.last_d_transitions);
  return {w.scheme, w.last_results};
}

SelectionReport ChunkSelector::report() const {
  SelectionReport rep;
  rep.mode = policy_.mode();
  rep.cost_model = policy_.cost_model();
  rep.blocks = blocks_;
  rep.bursts = bursts_;
  rep.selected_cost = selected_cost_;
  rep.probes = probes_;
  rep.probe_hits = probe_hits_;
  bool first = true;
  for (const auto& c : candidates_) {
    CandidateReport cr;
    cr.scheme = c->scheme;
    cr.blocks_chosen = c->blocks_chosen;
    cr.bursts_chosen = c->bursts_chosen;
    cr.trial_blocks = c->trial_blocks;
    cr.trial_cost = c->trial_cost;
    cr.chosen_cost = c->chosen_cost;
    rep.candidates.push_back(cr);
    if (c->trial_blocks > 0 && (first || c->trial_cost < rep.best_trial_cost)) {
      rep.best_trial_cost = c->trial_cost;
      first = false;
    }
  }
  return rep;
}

std::string SelectionReport::to_json() const {
  std::string out = "{";
  out += "\"mode\":\"";
  out += mode == SchemePolicy::Mode::kAdaptivePredicted ? "adaptive-predicted"
         : mode == SchemePolicy::Mode::kAdaptiveExact   ? "adaptive-exact"
         : mode == SchemePolicy::Mode::kFixed           ? "fixed"
                                                        : "follow-scheme";
  out += "\",\"cost_model\":\"";
  out += cost_model_name(cost_model);
  out += "\",\"blocks\":" + std::to_string(blocks);
  out += ",\"bursts\":" + std::to_string(bursts);
  out += ",\"selected_cost\":" + json_num(selected_cost);
  out += ",\"best_trial_cost\":" + json_num(best_trial_cost);
  out += ",\"cost_ratio_vs_best_fixed\":" + json_num(cost_ratio_vs_best_fixed());
  out += ",\"probes\":" + std::to_string(probes);
  out += ",\"probe_hits\":" + std::to_string(probe_hits);
  out += ",\"accuracy\":" + json_num(accuracy());
  out += ",\"candidates\":[";
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const CandidateReport& c = candidates[i];
    if (i) out += ',';
    out += "{\"scheme\":\"";
    out += scheme_slug(c.scheme);
    out += "\",\"blocks_chosen\":" + std::to_string(c.blocks_chosen);
    out += ",\"bursts_chosen\":" + std::to_string(c.bursts_chosen);
    out += ",\"trial_blocks\":" + std::to_string(c.trial_blocks);
    out += ",\"trial_cost\":" + json_num(c.trial_cost);
    out += ",\"chosen_cost\":" + json_num(c.chosen_cost);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace dbi::select
