// select::ChunkSelector — the per-block scheme selection engine behind
// adaptive SchemePolicy sessions ("mixed-block" coding).
//
// The selector owns one BatchEncoder + StreamEncoder pair per candidate
// scheme, all sharing one committed line-state history: a block trial
// copies the committed states into the candidate's scratch span, runs
// the real engine kernels over the block, and costs the result under
// the policy's CostModel; the winner's scratch becomes the committed
// history. Exact mode trials every candidate on every block, so the
// selected cost is block-wise minimal by construction. Predicted mode
// trials only every probe_interval-th block; the other blocks score
// cheap payload features (toggle density, zero-byte mass, byte entropy)
// through per-candidate linear models fitted on the probes, and the
// probes double as an accuracy measurement of the predictor.
//
// The selector is deterministic: no clocks, no RNG — ties break toward
// the earlier candidate, and the predicted model is re-fitted by exact
// normal equations in candidate order.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/geometry.hpp"
#include "core/cost.hpp"
#include "core/encoder.hpp"
#include "engine/batch_decoder.hpp"
#include "engine/batch_encoder.hpp"
#include "engine/shard_pool.hpp"
#include "engine/stream_encoder.hpp"
#include "obs/metrics.hpp"
#include "select/scheme_policy.hpp"

namespace dbi::obs {
class Observer;
}  // namespace dbi::obs

namespace dbi::select {

/// Per-candidate totals of one adaptive run. `trial_cost` sums the
/// candidate's block costs over the blocks it was actually trial-encoded
/// on (every block in exact mode, probes only in predicted mode), each
/// trial starting from the committed mixed history — so in exact mode
/// `trial_cost` is what the candidate would have cost had it been forced
/// on every block of this stream.
struct CandidateReport {
  Scheme scheme = Scheme::kRaw;
  std::int64_t blocks_chosen = 0;
  std::int64_t bursts_chosen = 0;
  std::int64_t trial_blocks = 0;
  double trial_cost = 0.0;
  double chosen_cost = 0.0;
};

/// Selection outcome of one adaptive session run.
struct SelectionReport {
  SchemePolicy::Mode mode = SchemePolicy::Mode::kFollowScheme;
  CostModel cost_model = CostModel::kTransitions;
  std::int64_t blocks = 0;
  std::int64_t bursts = 0;
  /// Total cost of the blocks the selector actually committed.
  double selected_cost = 0.0;
  /// min over candidates of trial_cost — in exact mode, the cost of the
  /// best single fixed scheme on this stream (the Pareto baseline).
  double best_trial_cost = 0.0;
  /// Predicted mode only: exact probes run, and how many of them the
  /// feature model called correctly (argmin match).
  std::int64_t probes = 0;
  std::int64_t probe_hits = 0;
  std::vector<CandidateReport> candidates;

  /// Probe accuracy of the predictor in [0,1]; 1.0 when never probed.
  [[nodiscard]] double accuracy() const {
    return probes > 0 ? static_cast<double>(probe_hits) /
                            static_cast<double>(probes)
                      : 1.0;
  }
  /// best_trial_cost / selected_cost: > 1 means the mixed stream beat
  /// the best single candidate (exact mode; probe-sampled otherwise).
  [[nodiscard]] double cost_ratio_vs_best_fixed() const {
    return selected_cost > 0.0 ? best_trial_cost / selected_cost : 1.0;
  }
  [[nodiscard]] std::string to_json() const;
};

class ChunkSelector {
 public:
  struct Config {
    SchemePolicy policy;  ///< must be adaptive (validated)
    Geometry geometry;
    CostWeights weights;
    int lanes = 1;
    bool reset_state_per_burst = false;
    engine::ShardPool* pool = nullptr;
    obs::Observer* obs = nullptr;
    /// Kernel variant handed to every candidate engine (null: registry
    /// default).
    const engine::KernelVariant* kernel = nullptr;
  };

  explicit ChunkSelector(const Config& cfg);
  ChunkSelector(const ChunkSelector&) = delete;
  ChunkSelector& operator=(const ChunkSelector&) = delete;
  ~ChunkSelector();

  struct BlockResult {
    Scheme scheme = Scheme::kRaw;
    /// Winner's per-(burst, group) results in trace order; valid until
    /// this selector encodes its next block.
    std::span<const engine::BurstResult> results;
  };

  /// Encodes one selection block (`burst_count` packed bursts) under the
  /// policy, commits the winning scheme's line states, and returns the
  /// winner. `first_burst` is the stream-global index of the block's
  /// first burst (fixes the lane interleave).
  BlockResult encode_block(std::int64_t first_burst,
                           std::span<const std::uint8_t> payload,
                           std::size_t burst_count);

  /// 64-bit totals over every committed block.
  [[nodiscard]] std::int64_t bursts() const { return bursts_; }
  [[nodiscard]] std::int64_t zeros() const { return zeros_; }
  [[nodiscard]] std::int64_t transitions() const { return transitions_; }

  [[nodiscard]] SelectionReport report() const;

 private:
  struct Candidate;

  double block_cost(Candidate& c, std::span<const std::uint8_t> payload,
                    std::span<const engine::BurstResult> results,
                    std::int64_t d_zeros, std::int64_t d_transitions);
  std::size_t trial_all(std::int64_t first_burst,
                        std::span<const std::uint8_t> payload,
                        std::size_t burst_count, std::vector<double>& costs);
  void compute_features(std::span<const std::uint8_t> payload,
                        double features[4]) const;
  void commit(Candidate& c, std::size_t burst_count, double cost,
              std::int64_t d_zeros, std::int64_t d_transitions);

  SchemePolicy policy_;
  Geometry geometry_;
  CostWeights weights_;
  engine::StreamEncodeOptions stream_opt_;
  obs::Observer* obs_ = nullptr;

  std::vector<std::unique_ptr<Candidate>> candidates_;
  std::vector<dbi::BusState> committed_;  // lanes x groups, group-minor
  engine::BatchDecoder decoder_;          // kBytes wire materialisation
  std::vector<std::uint8_t> wire_;        // kBytes scratch
  std::vector<std::uint64_t> mask_words_;
  std::vector<std::uint8_t> rle_scratch_;

  std::int64_t blocks_ = 0;
  std::int64_t bursts_ = 0;
  std::int64_t zeros_ = 0;
  std::int64_t transitions_ = 0;
  double selected_cost_ = 0.0;
  std::int64_t probes_ = 0;
  std::int64_t probe_hits_ = 0;
  std::vector<double> trial_costs_;  // scratch, one slot per candidate
};

}  // namespace dbi::select
