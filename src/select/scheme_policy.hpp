// dbi::SchemePolicy — how a Session chooses the encoding scheme.
//
// Historically SessionSpec carried one bare Scheme for the whole
// stream. Real traffic is heterogeneous (sparse pages next to
// high-entropy tensors), and the paper's central result is that no
// single scheme is optimal across data statistics — so the policy type
// generalises the slot:
//
//   spec.policy = SchemePolicy::fixed(Scheme::kAc);        // old behaviour
//   spec.policy = SchemePolicy::adaptive_exact(            // mixed-block
//       {Scheme::kDc, Scheme::kAc, Scheme::kOpt},
//       CostModel::kTransitions);
//   spec.policy = SchemePolicy::adaptive_predicted(
//       {Scheme::kDc, Scheme::kAc, Scheme::kOpt});
//
// Adaptive sessions re-decide the scheme every `block_bursts` bursts:
// exact mode encodes each block under every candidate through the
// engine kernels and keeps the minimum-cost result; predicted mode
// scores cheap per-block features (toggle density, zero mass, entropy)
// through a fitted linear model and exact-probes every
// `probe_interval`-th block to re-fit. Encoded traces written by an
// adaptive session carry a per-chunk scheme tag (trace format v3) so
// decode and verify stay self-describing.
//
// SessionSpec::scheme remains assignable as a deprecated shim: a bare
// Scheme converts implicitly to a fixed() policy, and a
// default-constructed policy (Mode::kFollowScheme) defers to the old
// enum slot, so every pre-policy caller compiles and behaves unchanged.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/encoder.hpp"

namespace dbi {

/// What the per-block selector minimises.
enum class CostModel : std::uint8_t {
  kTransitions,  ///< wire + DBI-line transitions (AC energy)
  kEnergy,       ///< alpha * transitions + beta * zeros (session weights)
  kBytes,        ///< RLE-compressed transmitted byte volume
};

/// Short machine-friendly scheme slug ("dc", "acdc", "opt-fixed") — the
/// spelling dbitool flags, metric labels and report JSON use, as
/// opposed to core scheme_name()'s display form ("DBI DC").
[[nodiscard]] constexpr std::string_view scheme_slug(Scheme s) {
  switch (s) {
    case Scheme::kRaw:
      return "raw";
    case Scheme::kDc:
      return "dc";
    case Scheme::kAc:
      return "ac";
    case Scheme::kAcDc:
      return "acdc";
    case Scheme::kOpt:
      return "opt";
    case Scheme::kOptFixed:
      return "opt-fixed";
    case Scheme::kExhaustive:
      return "exhaustive";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view cost_model_name(CostModel m) {
  switch (m) {
    case CostModel::kTransitions:
      return "transitions";
    case CostModel::kEnergy:
      return "energy";
    case CostModel::kBytes:
      return "bytes";
  }
  return "?";
}

class SchemePolicy {
 public:
  enum class Mode : std::uint8_t {
    kFollowScheme,      ///< default-constructed: SessionSpec::scheme governs
    kFixed,             ///< one scheme for the whole stream
    kAdaptiveExact,     ///< encode-all-candidates, keep the cheapest
    kAdaptivePredicted  ///< feature model + periodic exact probe
  };

  /// Bursts per selection block (and per trace chunk in mixed traces).
  static constexpr int kDefaultBlockBursts = 256;
  /// Every Nth block of a predicted session is exact-probed to re-fit.
  static constexpr int kDefaultProbeInterval = 16;

  SchemePolicy() = default;
  /// Implicit shim: a bare Scheme is a fixed policy, so
  /// `spec.policy = Scheme::kAc;` reads like the old enum slot.
  SchemePolicy(Scheme s) : mode_(Mode::kFixed), candidates_{s} {}  // NOLINT

  [[nodiscard]] static SchemePolicy fixed(Scheme s) { return SchemePolicy(s); }

  [[nodiscard]] static SchemePolicy adaptive_exact(
      std::vector<Scheme> candidates = default_candidates(),
      CostModel cost = CostModel::kTransitions) {
    SchemePolicy p;
    p.mode_ = Mode::kAdaptiveExact;
    p.candidates_ = std::move(candidates);
    p.cost_model_ = cost;
    return p;
  }

  [[nodiscard]] static SchemePolicy adaptive_predicted(
      std::vector<Scheme> candidates = default_candidates(),
      CostModel cost = CostModel::kTransitions,
      int probe_interval = kDefaultProbeInterval) {
    SchemePolicy p;
    p.mode_ = Mode::kAdaptivePredicted;
    p.candidates_ = std::move(candidates);
    p.cost_model_ = cost;
    p.probe_interval_ = probe_interval;
    return p;
  }

  /// The candidate menu adaptive factories default to: the paper's
  /// fixed schemes plus the optimal trellis.
  [[nodiscard]] static std::vector<Scheme> default_candidates() {
    return {Scheme::kDc, Scheme::kAc, Scheme::kAcDc, Scheme::kOpt};
  }

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] bool adaptive() const {
    return mode_ == Mode::kAdaptiveExact || mode_ == Mode::kAdaptivePredicted;
  }
  /// The pinned scheme of a kFixed policy (callers check mode() first).
  [[nodiscard]] Scheme fixed_scheme() const { return candidates_.front(); }
  [[nodiscard]] const std::vector<Scheme>& candidates() const {
    return candidates_;
  }
  [[nodiscard]] CostModel cost_model() const { return cost_model_; }
  [[nodiscard]] int probe_interval() const { return probe_interval_; }
  [[nodiscard]] int block_bursts() const { return block_bursts_; }
  SchemePolicy& set_block_bursts(int bursts) {
    block_bursts_ = bursts;
    return *this;
  }

  void validate() const {
    if (adaptive()) {
      if (candidates_.size() < 2)
        throw std::invalid_argument(
            "SchemePolicy: an adaptive policy needs at least two candidate "
            "schemes");
      for (std::size_t i = 0; i < candidates_.size(); ++i)
        for (std::size_t j = i + 1; j < candidates_.size(); ++j)
          if (candidates_[i] == candidates_[j])
            throw std::invalid_argument(
                "SchemePolicy: duplicate candidate scheme " +
                std::string(scheme_slug(candidates_[i])));
    }
    if (block_bursts_ < 1)
      throw std::invalid_argument("SchemePolicy: block_bursts must be >= 1");
    if (probe_interval_ < 1)
      throw std::invalid_argument(
          "SchemePolicy: probe_interval must be >= 1");
  }

  /// "fixed(ac)" / "adaptive-exact(dc,ac,opt; cost=transitions)" — the
  /// form reports and error messages embed.
  [[nodiscard]] std::string describe() const {
    switch (mode_) {
      case Mode::kFollowScheme:
        return "follow-scheme";
      case Mode::kFixed:
        return "fixed(" + std::string(scheme_slug(fixed_scheme())) + ")";
      case Mode::kAdaptiveExact:
      case Mode::kAdaptivePredicted: {
        std::string out = mode_ == Mode::kAdaptiveExact ? "adaptive-exact("
                                                        : "adaptive-predicted(";
        for (std::size_t i = 0; i < candidates_.size(); ++i) {
          if (i) out += ',';
          out += scheme_slug(candidates_[i]);
        }
        out += "; cost=";
        out += cost_model_name(cost_model_);
        out += ')';
        return out;
      }
    }
    return "?";
  }

  friend bool operator==(const SchemePolicy&, const SchemePolicy&) = default;

 private:
  Mode mode_ = Mode::kFollowScheme;
  std::vector<Scheme> candidates_;
  CostModel cost_model_ = CostModel::kTransitions;
  int probe_interval_ = kDefaultProbeInterval;
  int block_bursts_ = kDefaultBlockBursts;
};

}  // namespace dbi
