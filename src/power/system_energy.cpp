#include "power/system_energy.hpp"

namespace dbi::power {

double burst_rate(const PodParams& p, const dbi::BusConfig& cfg) {
  p.validate();
  cfg.validate();
  return p.data_rate / cfg.burst_length;
}

BurstEnergy system_burst_energy(const PodParams& p, const dbi::BusConfig& cfg,
                                const dbi::BurstStats& stats,
                                const EncoderHardware& hw) {
  BurstEnergy e;
  e.interface = burst_energy(p, stats);
  e.encoder = hw.energy_per_burst(burst_rate(p, cfg));
  return e;
}

}  // namespace dbi::power
