#include "power/pod_params.hpp"

#include <stdexcept>

namespace dbi::power {

void PodParams::validate() const {
  if (vddq <= 0) throw std::invalid_argument("PodParams: vddq <= 0");
  if (r_pullup <= 0 || r_pulldown <= 0)
    throw std::invalid_argument("PodParams: resistances must be > 0");
  if (c_load < 0) throw std::invalid_argument("PodParams: c_load < 0");
  if (data_rate <= 0) throw std::invalid_argument("PodParams: data_rate <= 0");
}

PodParams PodParams::pod135(double c_load, double data_rate) {
  return PodParams{"POD135", 1.35, 60.0, 40.0, c_load, data_rate};
}

PodParams PodParams::pod12(double c_load, double data_rate) {
  return PodParams{"POD12", 1.2, 60.0, 34.0, c_load, data_rate};
}

PodParams PodParams::pod15(double c_load, double data_rate) {
  return PodParams{"POD15", 1.5, 60.0, 40.0, c_load, data_rate};
}

PodParams PodParams::at_rate(double rate) const {
  PodParams p = *this;
  p.data_rate = rate;
  return p;
}

PodParams PodParams::with_load(double load) const {
  PodParams p = *this;
  p.c_load = load;
  return p;
}

}  // namespace dbi::power
