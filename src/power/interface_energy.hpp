// The CACTI-IO-derived interface energy model of the paper
// (Section IV-A, Eqs. 1-4):
//
//   E_zero       = VDDQ^2 / (Rpullup + Rpulldown) * 1/f            (1)
//   E_transition = 1/2 * VDDQ * Vswing * c_load                    (2)
//   Vswing       = VDDQ * Rpullup / (Rpullup + Rpulldown)          (3)
//   E_burst      = n_zeros * E_zero + n_transitions * E_transition (4)
//
// E_zero falls with the data rate (a zero occupies one bit time of DC
// current), E_transition does not — which is exactly why the optimal
// alpha/beta trade-off moves from DC-like to AC-like as the data rate
// grows (Fig. 7).
#pragma once

#include "core/cost.hpp"
#include "core/encoding.hpp"
#include "power/pod_params.hpp"

namespace dbi::power {

/// Eq. (3): receiver-side signal swing [V].
[[nodiscard]] double v_swing(const PodParams& p);

/// Eq. (1): energy of transmitting a single zero for one bit time [J].
[[nodiscard]] double energy_zero(const PodParams& p);

/// Eq. (2): energy of one 0->1 or 1->0 line transition [J].
[[nodiscard]] double energy_transition(const PodParams& p);

/// Eq. (4): interface energy of one encoded burst [J].
[[nodiscard]] double burst_energy(const PodParams& p, const BurstStats& s);

/// The (alpha, beta) cost coefficients this interface induces:
/// alpha = E_transition, beta = E_zero. Feeding them to the trellis
/// encoder yields the minimum-interface-energy encoding at this
/// operating point (what "DBI OPT" means in Figs. 7/8).
[[nodiscard]] dbi::CostWeights weights_from_pod(const PodParams& p);

}  // namespace dbi::power
