// Interface energy + encoder energy = the system-level per-burst cost
// the paper evaluates in Figs. 7 (interface only) and 8 (totals).
#pragma once

#include "core/encoding.hpp"
#include "power/encoder_energy.hpp"
#include "power/interface_energy.hpp"
#include "power/pod_params.hpp"

namespace dbi::power {

/// Energy breakdown for one burst of one DBI group [J].
struct BurstEnergy {
  double interface = 0.0;  ///< Eq. (4) over the group's lines
  double encoder = 0.0;    ///< encoding overhead (Table I model)

  [[nodiscard]] double total() const { return interface + encoder; }
};

/// Burst rate implied by an interface: one burst occupies burst_length
/// bit times on every line, so burst_rate = data_rate / burst_length.
[[nodiscard]] double burst_rate(const PodParams& p, const dbi::BusConfig& cfg);

/// Energy of one encoded burst including the encoder hardware running
/// at the interface's burst rate.
[[nodiscard]] BurstEnergy system_burst_energy(const PodParams& p,
                                              const dbi::BusConfig& cfg,
                                              const dbi::BurstStats& stats,
                                              const EncoderHardware& hw);

}  // namespace dbi::power
