#include "power/interface_energy.hpp"

namespace dbi::power {

double v_swing(const PodParams& p) {
  p.validate();
  return p.vddq * p.r_pullup / (p.r_pullup + p.r_pulldown);
}

double energy_zero(const PodParams& p) {
  p.validate();
  return p.vddq * p.vddq / (p.r_pullup + p.r_pulldown) / p.data_rate;
}

double energy_transition(const PodParams& p) {
  return 0.5 * p.vddq * v_swing(p) * p.c_load;
}

double burst_energy(const PodParams& p, const BurstStats& s) {
  return s.zeros * energy_zero(p) + s.transitions * energy_transition(p);
}

dbi::CostWeights weights_from_pod(const PodParams& p) {
  return dbi::CostWeights{energy_transition(p), energy_zero(p)};
}

}  // namespace dbi::power
