// Energy cost of the DBI encoder hardware itself (paper Table I and
// Fig. 8). An EncoderHardware describes one synthesised encoder unit:
// silicon area, leakage, dynamic energy per encoded burst and the
// maximum burst rate one unit sustains. When the channel needs a higher
// burst rate than one unit can deliver, parallel units are instantiated
// (the paper: three 0.5 GHz 3-bit-coefficient units for a 1.5 GHz
// channel), multiplying area and leakage.
#pragma once

#include <string>

#include "core/encoder.hpp"

namespace dbi::power {

struct EncoderHardware {
  std::string name;
  double area_um2 = 0.0;         ///< one encoder unit
  double static_power_w = 0.0;   ///< leakage of one unit
  double dyn_energy_per_burst_j = 0.0;  ///< CV^2-type switching energy
  double max_burst_rate_hz = 0.0;       ///< timing limit of one unit

  /// Parallel units needed to sustain `burst_rate` (>= 1).
  [[nodiscard]] int units_needed(double burst_rate) const;

  /// Total silicon area at the given channel burst rate [um^2].
  [[nodiscard]] double total_area(double burst_rate) const;

  /// Encoding energy per burst at the given channel burst rate [J]:
  /// switching energy plus the leakage of every instantiated unit
  /// integrated over one burst period.
  [[nodiscard]] double energy_per_burst(double burst_rate) const;

  /// Total encoder power at the given channel burst rate [W].
  [[nodiscard]] double total_power(double burst_rate) const;
};

/// Table-driven model reproducing the paper's Table I synthesis numbers
/// (Synopsys 32 nm generic library, 8-byte burst per cycle):
///
///   scheme            area     static   dynamic@rate  burst rate
///   DBI DC            275 um2  105 uW   111 uW        1.5 GHz
///   DBI AC            578 um2  170 uW   250 uW        1.5 GHz
///   DBI OPT (Fixed)   3807 um2 257 uW   2233 uW       1.5 GHz
///   DBI OPT (3-bit)   16584um2 5200 uW  3600 uW       0.5 GHz
///
/// RAW and schemes without a paper row map to a zero-cost encoder.
/// The gate-level alternative derived from our own netlists lives in
/// hw::synthesis (same struct, different provenance).
[[nodiscard]] EncoderHardware table1_hardware(dbi::Scheme scheme);

/// The configurable-coefficient design (Table I row 4), which is not a
/// dbi::Scheme of its own: behaviourally it is kOpt with quantised
/// coefficients.
[[nodiscard]] EncoderHardware table1_opt_3bit();

}  // namespace dbi::power
