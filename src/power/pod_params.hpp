// Electrical parameters of a pseudo-open-drain (POD) memory interface
// (paper Fig. 1 and Section IV-A).
//
// In POD signalling the line is terminated to VDDQ through Rpullup
// (the on-die termination) and driven low through Rpulldown (the
// driver): DC current only flows while a 0 is on the wire, and every
// 0<->1 transition (dis)charges the load capacitance c_load.
#pragma once

#include <string>

namespace dbi::power {

struct PodParams {
  std::string name = "POD";
  double vddq = 1.35;        ///< supply / termination voltage [V]
  double r_pullup = 60.0;    ///< on-die termination to VDDQ [ohm]
  double r_pulldown = 40.0;  ///< driver pull-down impedance [ohm]
  double c_load = 3e-12;     ///< total line load capacitance [F]
  double data_rate = 12e9;   ///< per-pin data rate f [bit/s]

  /// Throws std::invalid_argument when electrically meaningless.
  void validate() const;

  /// POD135 (1.35 V) as used by GDDR5/GDDR5X — the headline
  /// configuration of Figs. 7 and 8. Driver 40 ohm, ODT 60 ohm are
  /// JEDEC-typical values (JESD212C / JESD232A operating points).
  [[nodiscard]] static PodParams pod135(double c_load = 3e-12,
                                        double data_rate = 12e9);

  /// POD12 (1.2 V) as used by DDR4 (JESD79-4B); 34 ohm driver and
  /// 60 ohm ODT are the common DDR4 output/termination settings.
  [[nodiscard]] static PodParams pod12(double c_load = 3e-12,
                                       double data_rate = 3.2e9);

  /// POD15 (1.5 V, JESD8-20A) as used by GDDR5 on older nodes.
  [[nodiscard]] static PodParams pod15(double c_load = 3e-12,
                                       double data_rate = 6e9);

  /// Same interface at a different data rate (used by rate sweeps).
  [[nodiscard]] PodParams at_rate(double rate) const;

  /// Same interface with a different load (used by the Fig. 8 sweep).
  [[nodiscard]] PodParams with_load(double load) const;
};

}  // namespace dbi::power
