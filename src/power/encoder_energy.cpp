#include "power/encoder_energy.hpp"

#include <cmath>
#include <stdexcept>

namespace dbi::power {

namespace {

// Table I measured the dynamic power at each design's own maximum
// burst rate; dynamic energy per burst is rate-independent.
EncoderHardware from_table_row(std::string name, double area_um2,
                               double static_uw, double dynamic_uw,
                               double rate_ghz) {
  EncoderHardware hw;
  hw.name = std::move(name);
  hw.area_um2 = area_um2;
  hw.static_power_w = static_uw * 1e-6;
  hw.dyn_energy_per_burst_j = dynamic_uw * 1e-6 / (rate_ghz * 1e9);
  hw.max_burst_rate_hz = rate_ghz * 1e9;
  return hw;
}

}  // namespace

int EncoderHardware::units_needed(double burst_rate) const {
  if (burst_rate <= 0)
    throw std::invalid_argument("EncoderHardware: burst_rate <= 0");
  if (max_burst_rate_hz <= 0) return 0;  // free encoder (RAW)
  return static_cast<int>(std::ceil(burst_rate / max_burst_rate_hz - 1e-9));
}

double EncoderHardware::total_area(double burst_rate) const {
  return area_um2 * units_needed(burst_rate);
}

double EncoderHardware::energy_per_burst(double burst_rate) const {
  const int units = units_needed(burst_rate);
  if (units == 0) return 0.0;
  return dyn_energy_per_burst_j + units * static_power_w / burst_rate;
}

double EncoderHardware::total_power(double burst_rate) const {
  return energy_per_burst(burst_rate) * burst_rate;
}

EncoderHardware table1_hardware(dbi::Scheme scheme) {
  using dbi::Scheme;
  switch (scheme) {
    case Scheme::kDc:
      return from_table_row("DBI DC", 275, 105, 111, 1.5);
    case Scheme::kAc:
      return from_table_row("DBI AC", 578, 170, 250, 1.5);
    case Scheme::kAcDc:
      // Hollis ACDC is an AC datapath with a first-beat DC rule; the
      // paper gives no row, the AC row is the closest measured cost.
      return from_table_row("DBI ACDC", 578, 170, 250, 1.5);
    case Scheme::kOptFixed:
      return from_table_row("DBI OPT (Fixed Coeff.)", 3807, 257, 2233, 1.5);
    case Scheme::kOpt:
      // The real-coefficient trellis corresponds in hardware to the
      // configurable-coefficient design.
      return table1_opt_3bit();
    case Scheme::kRaw:
    case Scheme::kExhaustive:
      return EncoderHardware{std::string(dbi::scheme_name(scheme)), 0, 0, 0,
                             0};
  }
  throw std::invalid_argument("table1_hardware: unknown scheme");
}

EncoderHardware table1_opt_3bit() {
  return from_table_row("DBI OPT (3-Bit Coeff.)", 16584, 5200, 3600, 0.5);
}

}  // namespace dbi::power
