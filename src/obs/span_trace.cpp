#include "obs/span_trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <unordered_map>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace dbi::obs {

namespace {

std::uint64_t next_tracer_serial() {
  static std::atomic<std::uint64_t> serial{1};
  return serial.fetch_add(1, std::memory_order_relaxed);
}

struct RingCache {
  struct Entry {
    std::uint64_t serial = 0;
    void* ring = nullptr;
  };
  Entry entries[4];
};

thread_local RingCache tls_rings;

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct StageInfo {
  const char* name;
  const char* arg0;
  const char* arg1;
};

constexpr StageInfo kStages[static_cast<int>(Stage::kCount)] = {
    {"source_read", "chunk", "bytes"},
    {"chunk_prepare", "chunk", "compressed"},
    {"encode_chunk", "chunk", "bursts"},
    {"encode_unit", "lane", "group"},
    {"gather", "lane", "group"},
    {"decode_chunk", "chunk", "bursts"},
    {"sink_write", "chunk", "bytes"},
    {"pool_run", "worker", "shards"},
    {"crc", "bytes", nullptr},
};

}  // namespace

const char* stage_name(Stage stage) {
  const auto i = static_cast<int>(stage);
  return i >= 0 && i < static_cast<int>(Stage::kCount) ? kStages[i].name
                                                       : "unknown";
}

const char* stage_arg_name(Stage stage, int idx) {
  const auto i = static_cast<int>(stage);
  if (i < 0 || i >= static_cast<int>(Stage::kCount)) return nullptr;
  return idx == 0 ? kStages[i].arg0 : idx == 1 ? kStages[i].arg1 : nullptr;
}

Tracer::Tracer() : Tracer(Options{}) {}

Tracer::Tracer(Options opt)
    : serial_(next_tracer_serial()),
      opt_{std::max<std::size_t>(opt.ring_capacity, 16),
           std::max<std::uint32_t>(opt.sample_stride, 1),
           std::max<std::uint32_t>(opt.unit_sample_stride, 1)},
      epoch_ns_(steady_now_ns()) {
  for (int s = 0; s < static_cast<int>(Stage::kCount); ++s) {
    const Stage stage = static_cast<Stage>(s);
    const bool hot = stage == Stage::kEncodeUnit ||
                     stage == Stage::kGather || stage == Stage::kPoolRun;
    stage_stride_[s] = hot ? opt_.unit_sample_stride : opt_.sample_stride;
  }
}

Tracer::~Tracer() = default;

std::uint64_t Tracer::now_ns() const { return steady_now_ns() - epoch_ns_; }

bool Tracer::sample(Stage stage) {
  const std::uint32_t stride = stage_stride_[static_cast<int>(stage)];
  if (stride == 1) return true;
  Ring* ring = thread_ring();
  std::uint32_t& ctr = ring->sample_counters[static_cast<int>(stage)];
  const bool keep = ctr == 0;
  if (++ctr >= stride) ctr = 0;
  return keep;
}

Tracer::Ring* Tracer::thread_ring() {
  RingCache::Entry& e =
      tls_rings.entries[serial_ % std::size(tls_rings.entries)];
  if (e.serial == serial_) return static_cast<Ring*>(e.ring);
  return thread_ring_slow();
}

Tracer::Ring* Tracer::thread_ring_slow() {
  Ring* ring = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    static thread_local std::unordered_map<const Tracer*, std::size_t>
        tls_ring_index;
    const auto it = tls_ring_index.find(this);
    if (it != tls_ring_index.end() && it->second < rings_.size()) {
      ring = rings_[it->second].get();
    } else {
      auto fresh = std::make_unique<Ring>(opt_.ring_capacity);
      fresh->tid = static_cast<int>(rings_.size()) + 1;
#if defined(__linux__)
      char name[32] = {};
      if (pthread_getname_np(pthread_self(), name, sizeof name) == 0)
        fresh->thread_name = name;
#endif
      ring = fresh.get();
      tls_ring_index[this] = rings_.size();
      rings_.push_back(std::move(fresh));
    }
  }
  RingCache::Entry& e =
      tls_rings.entries[serial_ % std::size(tls_rings.entries)];
  e.serial = serial_;
  e.ring = ring;
  return ring;
}

void Tracer::record(Stage stage, std::uint64_t ts_ns, std::uint64_t dur_ns,
                    std::int64_t a0, std::int32_t a1) {
  Ring* ring = thread_ring();
  const std::uint64_t n = ring->total.load(std::memory_order_relaxed);
  SpanEvent& slot = ring->events[n % ring->capacity];
  slot.ts_ns = ts_ns;
  slot.dur_ns = dur_ns;
  slot.a0 = a0;
  slot.a1 = a1;
  slot.stage = stage;
  ring->total.store(n + 1, std::memory_order_release);
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t d = 0;
  for (const auto& r : rings_) {
    const std::uint64_t total = r->total.load(std::memory_order_acquire);
    if (total > r->capacity) d += total - r->capacity;
  }
  return d;
}

std::uint64_t Tracer::retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& r : rings_)
    n += std::min<std::uint64_t>(r->total.load(std::memory_order_acquire),
                                 r->capacity);
  return n;
}

void Tracer::write_chrome_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"traceEvents\": [";
  bool first = true;
  char buf[256];
  for (const auto& r : rings_) {
    if (!r->thread_name.empty()) {
      std::snprintf(buf, sizeof buf,
                    "%s\n  {\"ph\": \"M\", \"pid\": 1, \"tid\": %d, "
                    "\"name\": \"thread_name\", \"args\": {\"name\": "
                    "\"%s\"}}",
                    first ? "" : ",", r->tid, r->thread_name.c_str());
      out << buf;
      first = false;
    }
    const std::uint64_t total = r->total.load(std::memory_order_acquire);
    const std::uint64_t cap = r->capacity;
    const std::uint64_t kept = std::min(total, cap);
    // Oldest retained span first, so the Perfetto track reads in order.
    for (std::uint64_t k = 0; k < kept; ++k) {
      const SpanEvent& ev = r->events[(total - kept + k) % cap];
      std::snprintf(buf, sizeof buf,
                    "%s\n  {\"ph\": \"X\", \"pid\": 1, \"tid\": %d, "
                    "\"ts\": %.3f, \"dur\": %.3f, \"cat\": \"dbi\", "
                    "\"name\": \"%s\"",
                    first ? "" : ",", r->tid,
                    static_cast<double>(ev.ts_ns) / 1000.0,
                    static_cast<double>(ev.dur_ns) / 1000.0,
                    stage_name(ev.stage));
      out << buf;
      first = false;
      const char* a0 = stage_arg_name(ev.stage, 0);
      const char* a1 = stage_arg_name(ev.stage, 1);
      if (a0 && ev.a0 >= 0) {
        std::snprintf(buf, sizeof buf, ", \"args\": {\"%s\": %lld", a0,
                      static_cast<long long>(ev.a0));
        out << buf;
        if (a1 && ev.a1 >= 0) {
          std::snprintf(buf, sizeof buf, ", \"%s\": %d", a1,
                        static_cast<int>(ev.a1));
          out << buf;
        }
        out << "}";
      }
      out << "}";
    }
  }
  out << "\n]}\n";
}

}  // namespace dbi::obs
