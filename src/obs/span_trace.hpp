// obs::Tracer — fixed-size per-thread ring buffers of pipeline stage
// spans, dumpable as Chrome trace_event JSON (open the file in Perfetto
// or chrome://tracing).
//
// Recording is per-thread and allocation-free after the first span on a
// thread: a span is one steady_clock read at open, one at close, and a
// store into this thread's ring. Rings wrap — the newest
// `ring_capacity` spans per thread survive, and `dropped()` reports how
// many wrapped away. A `sample_stride` of N keeps every Nth span per
// (thread, stage) site, cutting timer overhead on very hot stages.
// The hot stages (kEncodeUnit and kGather fire per (lane, group)
// slice, kPoolRun per worker task — all far hotter than the per-chunk
// stages) take their own `unit_sample_stride`, defaulting to sampled,
// the same way a sampling profiler treats its hottest frames.
//
// write_chrome_json() must be called at quiescence (no spans being
// recorded); dbitool and the Session call it after runs complete.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace dbi::obs {

/// Pipeline stages attributed in traces and in the
/// `dbi_stage_duration_ns` histograms. Order is stable (metric labels
/// and trace names are derived from it).
enum class Stage : std::uint8_t {
  kSourceRead,    ///< Source::next() — payload generation / page-in
  kChunkPrepare,  ///< replay producer: RLE expand + page warm-up
  kEncodeChunk,   ///< StreamEncoder: one chunk through the engine
  kEncodeUnit,    ///< one (lane, group) unit slice incl. kernel time
  kGather,        ///< multi-lane / wide-bus gather into the lane buffer
  kDecodeChunk,   ///< BatchDecoder: one chunk decoded
  kSinkWrite,     ///< Sink::consume()
  kPoolRun,       ///< ShardPool: one worker's share of a run
  kCrc,           ///< trace-file CRC verification
  kCount
};

[[nodiscard]] const char* stage_name(Stage stage);
/// Name of span arg `idx` (0 or 1) for `stage`; nullptr = unused.
[[nodiscard]] const char* stage_arg_name(Stage stage, int idx);

/// One completed span. 32 bytes; rings hold these by value. Kept
/// trivially constructible on purpose: record() assigns every field,
/// so a fresh ring can stay an untouched virtual mapping instead of
/// paying a 512 KB zero-fill on each thread's first span.
struct SpanEvent {
  std::uint64_t ts_ns;   ///< start, relative to the tracer epoch
  std::uint64_t dur_ns;
  std::int64_t a0;       ///< stage-specific args; -1 = unset
  std::int32_t a1;
  Stage stage;
};

class Tracer {
 public:
  struct Options {
    std::size_t ring_capacity = 16384;  ///< spans kept per thread
    std::uint32_t sample_stride = 1;    ///< keep every Nth span per site
    /// Stride for the hot stages (kEncodeUnit, kGather, kPoolRun),
    /// which fire per (lane, group) slice / per worker task. 1 = trace
    /// every one (adds a few percent on hot replays); the default
    /// keeps every 16th.
    std::uint32_t unit_sample_stride = 16;
  };

  Tracer();
  explicit Tracer(Options opt);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// True when this thread should time the next span of `stage`
  /// (stride sampling; always true for a stage whose stride is 1).
  [[nodiscard]] bool sample(Stage stage);

  /// The effective sampling stride applied to `stage`.
  [[nodiscard]] std::uint32_t stride_for(Stage stage) const {
    return stage_stride_[static_cast<int>(stage)];
  }

  /// Nanoseconds since the tracer epoch (steady clock).
  [[nodiscard]] std::uint64_t now_ns() const;

  void record(Stage stage, std::uint64_t ts_ns, std::uint64_t dur_ns,
              std::int64_t a0, std::int32_t a1);

  /// Chrome trace_event JSON ({"traceEvents": [...]}; "X" complete
  /// events in µs plus "M" thread_name metadata). Quiescence required.
  void write_chrome_json(std::ostream& out) const;

  /// Spans overwritten by ring wrap, across all threads.
  [[nodiscard]] std::uint64_t dropped() const;
  /// Spans currently retained, across all threads.
  [[nodiscard]] std::uint64_t retained() const;

 private:
  struct Ring {
    explicit Ring(std::size_t cap)
        : events(std::make_unique_for_overwrite<SpanEvent[]>(cap)),
          capacity(cap) {}
    std::unique_ptr<SpanEvent[]> events;  // slots >= total are uninitialized
    std::size_t capacity;
    std::atomic<std::uint64_t> total{0};  // lifetime spans; head = total % cap
    std::uint32_t sample_counters[static_cast<int>(Stage::kCount)] = {};
    std::string thread_name;
    int tid = 0;  // 1-based ring sequence, stable per thread
  };

  Ring* thread_ring();
  Ring* thread_ring_slow();

  const std::uint64_t serial_;  // process-unique, keys the TLS cache
  const Options opt_;
  std::uint32_t stage_stride_[static_cast<int>(Stage::kCount)] = {};
  std::uint64_t epoch_ns_;  // raw steady_clock ns sampled at construction
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace dbi::obs
