#include "obs/observer.hpp"

#include <algorithm>
#include <ostream>
#include <string>

#include "api/stream_stats.hpp"
#include "api/version.hpp"
#include "engine/kernel_registry.hpp"
#include "engine/shard_pool.hpp"

namespace dbi::obs {

namespace {

std::string label(std::string_view key, std::string_view value) {
  std::string out(key);
  out += "=\"";
  out += value;
  out += "\"";
  return out;
}

}  // namespace

Observer::Observer(ObsConfig cfg)
    : level_(cfg.level == ObsLevel::kOff ? ObsLevel::kCounters : cfg.level),
      registry_(std::make_unique<Registry>(cfg.max_cells)) {
  if (level_ == ObsLevel::kFull)
    tracer_ = std::make_unique<Tracer>(Tracer::Options{
        cfg.ring_capacity, cfg.span_stride, cfg.unit_span_stride});

  Registry& r = *registry_;
  runs = r.counter("dbi_runs_total");
  bursts = r.counter("dbi_bursts_total");
  bytes = r.counter("dbi_bytes_total");
  writes = r.counter("dbi_writes_total");
  zeros = r.counter("dbi_zeros_total");
  transitions = r.counter("dbi_transitions_total");
  chunks = r.counter("dbi_chunks_total");
  replay_producer_starved = r.counter("dbi_replay_producer_starved_total");
  replay_consumer_starved = r.counter("dbi_replay_consumer_starved_total");
  pool_runs = r.counter("dbi_pool_runs_total");
  pool_shards = r.counter("dbi_pool_shards_total");
  rle_chunks = r.counter("dbi_trace_rle_chunks_total");
  rle_bytes_compressed = r.counter("dbi_trace_rle_bytes_compressed_total");
  rle_bytes_expanded = r.counter("dbi_trace_rle_bytes_expanded_total");

  pool_workers_gauge = r.gauge("dbi_pool_workers");
  trace_file_bytes = r.gauge("dbi_trace_file_bytes");
  trace_payload_bytes = r.gauge("dbi_trace_payload_bytes");
  trace_crc_ns = r.gauge("dbi_trace_crc_ns");
  trace_rle_expand_ratio = r.gauge("dbi_trace_rle_expand_ratio");
  spans_dropped = r.gauge("dbi_trace_spans_dropped");

  pool_queue_depth = r.histogram("dbi_pool_queue_depth");

  // Build identity: the Prometheus build-info convention — constant 1,
  // with the interesting bits in the labels.
  r.gauge("dbi_build_info", label("version", build_version())).set(1);

  for (const engine::KernelVariant* v : engine::registered_kernels()) {
    KernelCounters kc;
    kc.variant = v;
    const std::string kernel = label("kernel", v->name());
    kc.encode = r.counter("dbi_kernel_dispatch_total",
                          kernel + "," + label("path", "encode"));
    kc.decode = r.counter("dbi_kernel_dispatch_total",
                          kernel + "," + label("path", "decode"));
    kc.decode_wide = r.counter("dbi_kernel_dispatch_total",
                               kernel + "," + label("path", "decode_wide"));
    kernel_counters_.push_back(kc);
  }
  fallback_encode_ =
      r.counter("dbi_kernel_fallback_total", label("path", "encode"));
  fallback_decode_ =
      r.counter("dbi_kernel_fallback_total", label("path", "decode"));
  fallback_decode_wide_ =
      r.counter("dbi_kernel_fallback_total", label("path", "decode_wide"));

  for (int s = 0; s < static_cast<int>(Stage::kCount); ++s)
    stage_ns_[s] = r.histogram(
        "dbi_stage_duration_ns",
        label("stage", stage_name(static_cast<Stage>(s))));
}

Observer::~Observer() = default;

void Observer::count_run(const StreamStats& delta,
                         std::uint64_t byte_count) const {
  runs.inc();
  count_stats(delta, byte_count);
}

void Observer::count_stats(const StreamStats& delta,
                           std::uint64_t byte_count) const {
  bursts.add(static_cast<std::uint64_t>(delta.bursts));
  writes.add(static_cast<std::uint64_t>(delta.writes));
  zeros.add(static_cast<std::uint64_t>(delta.zeros));
  transitions.add(static_cast<std::uint64_t>(delta.transitions));
  bytes.add(byte_count);
}

void Observer::count_encode_dispatch(const engine::KernelVariant& k,
                                     bool fallback) const {
  for (const KernelCounters& kc : kernel_counters_)
    if (kc.variant == &k) {
      kc.encode.inc();
      break;
    }
  if (fallback) fallback_encode_.inc();
}

void Observer::count_decode_dispatch(const engine::KernelVariant& k,
                                     bool fallback) const {
  for (const KernelCounters& kc : kernel_counters_)
    if (kc.variant == &k) {
      kc.decode.inc();
      break;
    }
  if (fallback) fallback_decode_.inc();
}

void Observer::count_decode_wide_dispatch(const engine::KernelVariant& k,
                                          bool fallback) const {
  for (const KernelCounters& kc : kernel_counters_)
    if (kc.variant == &k) {
      kc.decode_wide.inc();
      break;
    }
  if (fallback) fallback_decode_wide_.inc();
}

void Observer::observe_stage(Stage stage, std::uint64_t dur_ns) const {
  stage_ns_[static_cast<int>(stage)].observe(dur_ns);
}

void Observer::attach_pool(engine::ShardPool& pool) {
  pool_workers_gauge.set(pool.workers());
  {
    std::lock_guard<std::mutex> lock(worker_mu_);
    const int want = std::min(pool.workers(), kMaxTrackedWorkers);
    for (int w = worker_busy_count_.load(std::memory_order_relaxed);
         w < want; ++w)
      worker_busy_[w] =
          registry_->counter("dbi_pool_worker_busy_ns_total",
                             label("worker", std::to_string(w)));
    if (want > worker_busy_count_.load(std::memory_order_relaxed))
      worker_busy_count_.store(want, std::memory_order_release);
  }
  pool.set_observer(this);
}

void Observer::count_pool_run(int shards) const {
  pool_runs.inc();
  pool_shards.add(static_cast<std::uint64_t>(shards));
  pool_queue_depth.observe(static_cast<std::uint64_t>(shards));
}

void Observer::count_worker_busy(int worker, std::uint64_t ns) const {
  const int n = worker_busy_count_.load(std::memory_order_acquire);
  if (worker >= 0 && worker < n) worker_busy_[worker].add(ns);
}

Snapshot Observer::snapshot() const {
  if (tracer_) spans_dropped.set(static_cast<double>(tracer_->dropped()));
  return registry_->snapshot();
}

void Observer::write_metrics_json(std::ostream& out) const {
  out << snapshot().to_json();
}

void Observer::write_metrics_prometheus(std::ostream& out) const {
  out << snapshot().to_prometheus();
}

bool Observer::write_trace_json(std::ostream& out) const {
  if (!tracer_) return false;
  tracer_->write_chrome_json(out);
  return true;
}

// ------------------------------------------------------------ ScopedSpan

void ScopedSpan::open(const Observer* obs, Stage stage, std::int64_t a0,
                      std::int32_t a1) {
  Tracer* t = obs->tracer();
  if (!t || !t->sample(stage)) return;  // kCounters / sampled out: no-op
  obs_ = obs;
  tracer_ = t;
  stage_ = stage;
  a0_ = a0;
  a1_ = a1;
  start_ns_ = t->now_ns();
}

void ScopedSpan::close() {
  if (!obs_) return;
  const std::uint64_t dur = tracer_->now_ns() - start_ns_;
  tracer_->record(stage_, start_ns_, dur, a0_, a1_);
  obs_->observe_stage(stage_, dur);
  obs_ = nullptr;
}

}  // namespace dbi::obs
