// Minimal JSON DOM parser — just enough to read back the metrics
// snapshots and Chrome trace files this layer emits (dbitool stats,
// test_obs well-formedness checks). Throws std::runtime_error with a
// byte offset on malformed input.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dbi::obs::json {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // insertion order

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* get(std::string_view key) const;
  /// Member's string value, or `fallback` when absent / not a string.
  [[nodiscard]] std::string_view get_string(std::string_view key,
                                            std::string_view fallback =
                                                "") const;
  /// Member's numeric value, or `fallback` when absent / not a number.
  [[nodiscard]] double get_number(std::string_view key,
                                  double fallback = 0) const;
};

/// Parse a complete JSON document (trailing whitespace allowed).
[[nodiscard]] Value parse(std::string_view text);

}  // namespace dbi::obs::json
