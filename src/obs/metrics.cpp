#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace dbi::obs {

namespace {

std::uint64_t next_registry_serial() {
  static std::atomic<std::uint64_t> serial{1};
  return serial.fetch_add(1, std::memory_order_relaxed);
}

/// Per-thread direct-mapped cache of registry slabs, keyed by the
/// registry's process-unique serial: the common case (one or two live
/// registries per thread) hits without any synchronisation, and a
/// destroyed registry's serial simply never matches again — the cache
/// holds no pointer that is dereferenced without its serial matching a
/// live registry the caller is inside of.
struct SlabCache {
  struct Entry {
    std::uint64_t serial = 0;
    std::atomic<std::uint64_t>* cells = nullptr;
  };
  Entry entries[4];
};

thread_local SlabCache tls_slabs;

std::string def_key(std::string_view name, std::string_view labels) {
  std::string key(name);
  key.push_back('\x1f');
  key.append(labels);
  return key;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

void append_number(std::string& out, double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 9e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

/// Upper value a log2 bucket can hold: bucket 0 is the value 0, bucket
/// b >= 1 holds bit-width-b values, i.e. [2^(b-1), 2^b - 1].
double bucket_upper(std::uint32_t b) {
  if (b == 0) return 0.0;
  if (b >= 63) return 9.2e18;
  return static_cast<double>((std::uint64_t{1} << b) - 1);
}

}  // namespace

// ---------------------------------------------------------------- handles

void Counter::add(std::uint64_t delta) const {
  if (!registry_) return;
  registry_->thread_cells()[cell_].fetch_add(delta,
                                             std::memory_order_relaxed);
}

void Gauge::set(double value) const {
  if (!registry_) return;
  registry_->gauges_[slot_].store(std::bit_cast<std::uint64_t>(value),
                                  std::memory_order_relaxed);
}

void Histogram::observe(std::uint64_t value) const {
  if (!registry_) return;
  std::atomic<std::uint64_t>* cells = registry_->thread_cells() + cell_;
  const auto bucket = static_cast<std::uint32_t>(
      std::min<int>(std::bit_width(value), kBuckets - 1));
  cells[bucket].fetch_add(1, std::memory_order_relaxed);
  cells[kBuckets].fetch_add(1, std::memory_order_relaxed);          // count
  cells[kBuckets + 1].fetch_add(value, std::memory_order_relaxed);  // sum
  // Per-thread max: the cell belongs to this thread alone, so a plain
  // read-compare-store is race-free; relaxed atomics keep snapshot()
  // reads well-defined.
  std::atomic<std::uint64_t>& mx = cells[kBuckets + 2];
  if (value > mx.load(std::memory_order_relaxed))
    mx.store(value, std::memory_order_relaxed);
}

// --------------------------------------------------------------- registry

Registry::Registry(std::size_t max_cells)
    : serial_(next_registry_serial()),
      max_cells_(std::max<std::size_t>(max_cells, Histogram::kCells)),
      gauges_(new std::atomic<std::uint64_t>[kMaxGauges]) {
  for (std::uint32_t g = 0; g < kMaxGauges; ++g)
    gauges_[g].store(std::bit_cast<std::uint64_t>(0.0),
                     std::memory_order_relaxed);
}

Registry::~Registry() = default;

std::atomic<std::uint64_t>* Registry::thread_cells() {
  SlabCache::Entry& e =
      tls_slabs.entries[serial_ % std::size(tls_slabs.entries)];
  if (e.serial == serial_) return e.cells;
  return thread_cells_slow();
}

std::atomic<std::uint64_t>* Registry::thread_cells_slow() {
  std::atomic<std::uint64_t>* cells = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // One slab per (registry, thread): the TLS cache may have evicted
    // this registry's entry, so threads re-find their slab by identity
    // — never create a second one, the counts live in the first.
    static thread_local std::unordered_map<const Registry*, std::size_t>
        tls_slab_index;
    const auto it = tls_slab_index.find(this);
    if (it != tls_slab_index.end() && it->second < slabs_.size() &&
        slabs_[it->second]) {
      cells = slabs_[it->second].get();
    } else {
      auto slab = std::make_unique<std::atomic<std::uint64_t>[]>(max_cells_);
      for (std::size_t i = 0; i < max_cells_; ++i)
        slab[i].store(0, std::memory_order_relaxed);
      cells = slab.get();
      tls_slab_index[this] = slabs_.size();
      slabs_.push_back(std::move(slab));
    }
  }
  SlabCache::Entry& e =
      tls_slabs.entries[serial_ % std::size(tls_slabs.entries)];
  e.serial = serial_;
  e.cells = cells;
  return cells;
}

std::uint32_t Registry::register_metric(std::string_view name,
                                        std::string_view labels,
                                        MetricKind kind,
                                        std::uint32_t cells_needed) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = def_key(name, labels);
  if (const auto it = index_.find(key); it != index_.end()) {
    const MetricDef& def = defs_[it->second];
    if (def.kind != kind)
      throw std::invalid_argument("obs::Registry: metric '" +
                                  std::string(name) +
                                  "' re-registered with a different kind");
    return def.cell;
  }
  std::uint32_t cell;
  if (kind == MetricKind::kGauge) {
    if (next_gauge_ >= kMaxGauges)
      throw std::length_error("obs::Registry: gauge capacity exhausted");
    cell = next_gauge_++;
  } else {
    if (next_cell_ + cells_needed > max_cells_)
      throw std::length_error(
          "obs::Registry: cell capacity exhausted (max_cells " +
          std::to_string(max_cells_) + ")");
    cell = next_cell_;
    next_cell_ += cells_needed;
  }
  index_.emplace(key, defs_.size());
  defs_.push_back(
      MetricDef{std::string(name), std::string(labels), kind, cell});
  return cell;
}

Counter Registry::counter(std::string_view name, std::string_view labels) {
  return Counter(this, register_metric(name, labels, MetricKind::kCounter, 1));
}

Gauge Registry::gauge(std::string_view name, std::string_view labels) {
  return Gauge(this, register_metric(name, labels, MetricKind::kGauge, 1));
}

Histogram Registry::histogram(std::string_view name,
                              std::string_view labels) {
  return Histogram(this, register_metric(name, labels, MetricKind::kHistogram,
                                         Histogram::kCells));
}

std::size_t Registry::metric_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return defs_.size();
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.points.reserve(defs_.size());

  const auto cell_sum = [this](std::uint32_t cell) {
    std::uint64_t total = 0;
    for (const auto& slab : slabs_)
      total += slab[cell].load(std::memory_order_relaxed);
    return total;
  };

  for (const MetricDef& def : defs_) {
    MetricPoint p;
    p.name = def.name;
    p.labels = def.labels;
    p.kind = def.kind;
    switch (def.kind) {
      case MetricKind::kCounter:
        p.value = static_cast<double>(cell_sum(def.cell));
        break;
      case MetricKind::kGauge:
        p.value = std::bit_cast<double>(
            gauges_[def.cell].load(std::memory_order_relaxed));
        break;
      case MetricKind::kHistogram: {
        std::uint64_t buckets[Histogram::kBuckets];
        for (std::uint32_t b = 0; b < Histogram::kBuckets; ++b)
          buckets[b] = cell_sum(def.cell + b);
        p.count = cell_sum(def.cell + Histogram::kBuckets);
        p.sum = static_cast<double>(cell_sum(def.cell + Histogram::kBuckets + 1));
        for (const auto& slab : slabs_)
          p.max = std::max(p.max,
                           slab[def.cell + Histogram::kBuckets + 2].load(
                               std::memory_order_relaxed));
        const auto quantile = [&](double q) {
          if (p.count == 0) return 0.0;
          const auto rank = static_cast<std::uint64_t>(
              q * static_cast<double>(p.count - 1)) + 1;
          std::uint64_t cum = 0;
          for (std::uint32_t b = 0; b < Histogram::kBuckets; ++b) {
            cum += buckets[b];
            if (cum >= rank)
              return std::min(bucket_upper(b),
                              static_cast<double>(p.max));
          }
          return static_cast<double>(p.max);
        };
        p.p50 = quantile(0.50);
        p.p90 = quantile(0.90);
        p.p99 = quantile(0.99);
        break;
      }
    }
    snap.points.push_back(std::move(p));
  }
  return snap;
}

// --------------------------------------------------------------- snapshot

const MetricPoint* Snapshot::find(std::string_view name,
                                  std::string_view labels) const {
  for (const MetricPoint& p : points)
    if (p.name == name && p.labels == labels) return &p;
  return nullptr;
}

double Snapshot::value(std::string_view name, std::string_view labels) const {
  const MetricPoint* p = find(name, labels);
  if (!p) return 0.0;
  return p->kind == MetricKind::kHistogram ? static_cast<double>(p->count)
                                           : p->value;
}

std::string Snapshot::to_prometheus() const {
  std::string out;
  std::string last_typed;
  const auto series = [](const MetricPoint& p, std::string_view suffix,
                         std::string_view extra_label) {
    std::string s(p.name);
    s += suffix;
    if (!p.labels.empty() || !extra_label.empty()) {
      s.push_back('{');
      s += p.labels;
      if (!p.labels.empty() && !extra_label.empty()) s.push_back(',');
      s += extra_label;
      s.push_back('}');
    }
    return s;
  };
  for (const MetricPoint& p : points) {
    if (p.name != last_typed) {
      out += "# TYPE " + p.name + " ";
      out += p.kind == MetricKind::kCounter   ? "counter"
             : p.kind == MetricKind::kGauge ? "gauge"
                                            : "summary";
      out.push_back('\n');
      last_typed = p.name;
    }
    if (p.kind == MetricKind::kHistogram) {
      const std::pair<const char*, double> quantiles[] = {
          {"quantile=\"0.5\"", p.p50},
          {"quantile=\"0.9\"", p.p90},
          {"quantile=\"0.99\"", p.p99}};
      for (const auto& [label, v] : quantiles) {
        out += series(p, "", label);
        out.push_back(' ');
        append_number(out, v);
        out.push_back('\n');
      }
      out += series(p, "_sum", "");
      out.push_back(' ');
      append_number(out, p.sum);
      out.push_back('\n');
      out += series(p, "_count", "");
      out.push_back(' ');
      append_number(out, static_cast<double>(p.count));
      out.push_back('\n');
      out += series(p, "_max", "");
      out.push_back(' ');
      append_number(out, static_cast<double>(p.max));
      out.push_back('\n');
    } else {
      out += series(p, "", "");
      out.push_back(' ');
      append_number(out, p.value);
      out.push_back('\n');
    }
  }
  return out;
}

std::string Snapshot::to_json() const {
  std::string out = "{\n  \"metrics\": [";
  bool first = true;
  for (const MetricPoint& p : points) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"";
    append_json_escaped(out, p.name);
    out += "\", \"labels\": \"";
    append_json_escaped(out, p.labels);
    out += "\", \"type\": \"";
    out += p.kind == MetricKind::kCounter   ? "counter"
           : p.kind == MetricKind::kGauge ? "gauge"
                                          : "histogram";
    out += "\"";
    if (p.kind == MetricKind::kHistogram) {
      out += ", \"count\": ";
      append_number(out, static_cast<double>(p.count));
      out += ", \"sum\": ";
      append_number(out, p.sum);
      out += ", \"max\": ";
      append_number(out, static_cast<double>(p.max));
      out += ", \"p50\": ";
      append_number(out, p.p50);
      out += ", \"p90\": ";
      append_number(out, p.p90);
      out += ", \"p99\": ";
      append_number(out, p.p99);
    } else {
      out += ", \"value\": ";
      append_number(out, p.value);
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace dbi::obs
