#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace dbi::obs::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json: " + std::string(what) + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.str = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        Value v;
        v.type = Value::Type::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        Value v;
        v.type = Value::Type::kBool;
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by this layer's own emitters).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool any = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
      any = true;
    }
    if (!any) fail("expected a value");
    Value v;
    v.type = Value::Type::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::get(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

std::string_view Value::get_string(std::string_view key,
                                   std::string_view fallback) const {
  const Value* v = get(key);
  return v && v->is_string() ? std::string_view(v->str) : fallback;
}

double Value::get_number(std::string_view key, double fallback) const {
  const Value* v = get(key);
  return v && v->is_number() ? v->number : fallback;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace dbi::obs::json
