// obs::Registry — a lock-free metrics registry for the hot encode
// paths: monotonic counters, gauges and log2-bucketed histograms
// (p50/p90/p99/max), exported as Prometheus text exposition or JSON.
//
// The hot path is one relaxed fetch_add on a per-thread cell: every
// thread gets its own fixed-capacity slab of atomic cells (created
// once, under the registry mutex, on the thread's first increment), so
// counters and histogram buckets never bounce a cache line between
// workers. snapshot() takes the mutex, sums the cells across slabs and
// derives the histogram quantiles — reads are exact at the moment of
// aggregation, never torn, and never block the writers.
//
// Handles (Counter / Gauge / Histogram) are cheap copyable {registry,
// cell} pairs; a default-constructed handle is a no-op, which is how
// the disabled mode costs nothing: callers hold null handles and the
// increment is one predictable branch. Registering the same
// (name, labels) pair twice returns the same cells, so wiring code can
// re-register idempotently.
//
// Metric names follow the Prometheus conventions: a stable dbi_-prefixed
// name plus an optional pre-formatted label list (e.g.
// `kernel="swar",path="encode"`); see README "Observability" for the
// full catalog.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace dbi::obs {

class Registry;

/// Monotonic counter handle. Default-constructed = disabled no-op.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t delta) const;
  void inc() const { add(1); }
  [[nodiscard]] explicit operator bool() const { return registry_ != nullptr; }

 private:
  friend class Registry;
  Counter(Registry* r, std::uint32_t cell) : registry_(r), cell_(cell) {}
  Registry* registry_ = nullptr;
  std::uint32_t cell_ = 0;
};

/// Double-valued gauge handle (one shared cell, set-last-wins — gauges
/// are set rarely, at run boundaries, never on the hot path).
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const;
  [[nodiscard]] explicit operator bool() const { return registry_ != nullptr; }

 private:
  friend class Registry;
  Gauge(Registry* r, std::uint32_t slot) : registry_(r), slot_(slot) {}
  Registry* registry_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Log2-bucketed histogram of non-negative 64-bit observations: bucket
/// b holds values of bit width b (b = 0 is the value 0), plus exact
/// count / sum / max cells, all per-thread.
class Histogram {
 public:
  Histogram() = default;
  void observe(std::uint64_t value) const;
  [[nodiscard]] explicit operator bool() const { return registry_ != nullptr; }

  static constexpr std::uint32_t kBuckets = 64;
  /// Cells one histogram occupies in a slab: buckets + count + sum + max.
  static constexpr std::uint32_t kCells = kBuckets + 3;

 private:
  friend class Registry;
  Histogram(Registry* r, std::uint32_t cell) : registry_(r), cell_(cell) {}
  Registry* registry_ = nullptr;
  std::uint32_t cell_ = 0;  // first of kCells consecutive cells
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One aggregated metric at snapshot time.
struct MetricPoint {
  std::string name;
  std::string labels;  ///< pre-formatted, e.g. `stage="encode"`; may be empty
  MetricKind kind = MetricKind::kCounter;
  double value = 0;  ///< counter / gauge value (counters are integral)
  // Histogram-only aggregates:
  std::uint64_t count = 0;
  double sum = 0;
  std::uint64_t max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

struct Snapshot {
  std::vector<MetricPoint> points;

  /// Prometheus text exposition (histograms as summaries with quantile
  /// labels plus _sum / _count / _max series).
  [[nodiscard]] std::string to_prometheus() const;
  /// {"metrics": [...]} — one object per point, stable field names.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] const MetricPoint* find(std::string_view name,
                                        std::string_view labels = "") const;
  /// Counter / gauge value (histograms: the count); 0 when absent.
  [[nodiscard]] double value(std::string_view name,
                             std::string_view labels = "") const;
};

class Registry {
 public:
  /// `max_cells` bounds the per-thread slab (8 bytes per cell per
  /// thread); registrations past it throw.
  explicit Registry(std::size_t max_cells = 4096);
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter counter(std::string_view name,
                                std::string_view labels = "");
  [[nodiscard]] Gauge gauge(std::string_view name,
                            std::string_view labels = "");
  [[nodiscard]] Histogram histogram(std::string_view name,
                                    std::string_view labels = "");

  [[nodiscard]] Snapshot snapshot() const;

  /// Number of registered metrics (diagnostics / tests).
  [[nodiscard]] std::size_t metric_count() const;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct MetricDef {
    std::string name;
    std::string labels;
    MetricKind kind;
    std::uint32_t cell;  // slab cell (counter / histogram) or gauge slot
  };

  /// This thread's slab of cells for this registry, created on first
  /// use. The returned pointer stays valid for the registry's lifetime.
  std::atomic<std::uint64_t>* thread_cells();
  std::atomic<std::uint64_t>* thread_cells_slow();
  std::uint32_t register_metric(std::string_view name,
                                std::string_view labels, MetricKind kind,
                                std::uint32_t cells_needed);

  const std::uint64_t serial_;      // process-unique, keys the TLS cache
  const std::size_t max_cells_;
  mutable std::mutex mu_;
  std::vector<MetricDef> defs_;
  std::unordered_map<std::string, std::size_t> index_;  // name\x1flabels -> def
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>[]>> slabs_;
  std::uint32_t next_cell_ = 0;

  static constexpr std::uint32_t kMaxGauges = 256;
  std::unique_ptr<std::atomic<std::uint64_t>[]> gauges_;  // double bit casts
  std::uint32_t next_gauge_ = 0;
};

}  // namespace dbi::obs
