// obs::Observer — the one object wiring code talks to: it owns the
// metrics Registry (and, at ObsLevel::kFull, the span Tracer),
// pre-registers the stable dbi_* metric catalog, and exposes the
// handles and hooks the engine / trace / api layers increment.
//
// Lifetime: an Observer outlives every component it is attached to, or
// the component is detached first (Session owns this: its destructor
// clears the pool observer it set). Components hold `const Observer*`
// and treat nullptr as "observability off" — the disabled hot path is
// one pointer test.
//
// Metric catalog (see README "Observability" for semantics):
//   dbi_runs_total, dbi_bursts_total, dbi_bytes_total, dbi_writes_total,
//   dbi_zeros_total, dbi_transitions_total, dbi_chunks_total,
//   dbi_replay_producer_starved_total, dbi_replay_consumer_starved_total,
//   dbi_pool_workers, dbi_pool_runs_total, dbi_pool_shards_total,
//   dbi_pool_queue_depth, dbi_pool_worker_busy_ns_total{worker=},
//   dbi_kernel_dispatch_total{kernel=,path=}, dbi_kernel_fallback_total{path=},
//   dbi_stage_duration_ns{stage=}, dbi_trace_file_bytes,
//   dbi_trace_payload_bytes, dbi_trace_crc_ns, dbi_trace_rle_expand_ratio,
//   dbi_trace_rle_chunks_total, dbi_trace_rle_bytes_compressed_total,
//   dbi_trace_rle_bytes_expanded_total, dbi_trace_spans_dropped,
//   dbi_build_info{version=}.
// The serving layer registers its per-tenant dbi_serve_* series on top
// of this catalog (see src/serve/server.cpp and README "Serving").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span_trace.hpp"

namespace dbi {
struct StreamStats;
}
namespace dbi::engine {
class KernelVariant;
class ShardPool;
}

namespace dbi::obs {

enum class ObsLevel : std::uint8_t {
  kOff,       ///< no observer at all — components see nullptr
  kCounters,  ///< metrics only: counters / gauges / histograms
  kFull       ///< metrics + span tracing (ring buffers, trace_event JSON)
};

struct ObsConfig {
  ObsLevel level = ObsLevel::kOff;
  std::uint32_t span_stride = 1;      ///< time every Nth span per site
  /// Stride for the hot stages (encode_unit, gather, pool_run), which
  /// fire per (lane, group) slice / per worker task and dominate span
  /// volume. Sampled by default so a kFull run stays within ~2% of an
  /// uninstrumented one; set to 1 for exhaustive traces (costs a few
  /// percent more on hot replays).
  std::uint32_t unit_span_stride = 16;
  std::size_t ring_capacity = 16384;  ///< spans kept per thread
  std::size_t max_cells = 4096;       ///< registry slab cells per thread
};

class Observer {
 public:
  /// kOff is clamped to kCounters: a constructed Observer is live by
  /// definition; "off" is expressed by not constructing one.
  explicit Observer(ObsConfig cfg = {.level = ObsLevel::kCounters});
  ~Observer();

  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  [[nodiscard]] ObsLevel level() const { return level_; }
  [[nodiscard]] Registry& registry() const { return *registry_; }
  /// nullptr below kFull.
  [[nodiscard]] Tracer* tracer() const { return tracer_.get(); }

  // --- run accounting (Session)
  /// Folds one run's StreamStats delta plus the encoded byte volume
  /// into the dbi_*_total counters and bumps dbi_runs_total.
  void count_run(const StreamStats& delta, std::uint64_t byte_count) const;
  /// Same fold without bumping dbi_runs_total (incremental write /
  /// write_stream deltas).
  void count_stats(const StreamStats& delta, std::uint64_t byte_count) const;

  // --- kernel dispatch (BatchEncoder / BatchDecoder)
  void count_encode_dispatch(const engine::KernelVariant& k,
                             bool fallback) const;
  void count_decode_dispatch(const engine::KernelVariant& k,
                             bool fallback) const;
  void count_decode_wide_dispatch(const engine::KernelVariant& k,
                                  bool fallback) const;

  // --- stage timing (ScopedSpan)
  void observe_stage(Stage stage, std::uint64_t dur_ns) const;

  // --- pool (ShardPool)
  /// Publishes the worker count, registers per-worker busy counters and
  /// points the pool at this observer. Idempotent.
  void attach_pool(engine::ShardPool& pool);
  void count_pool_run(int shards) const;
  void count_worker_busy(int worker, std::uint64_t ns) const;

  [[nodiscard]] Snapshot snapshot() const;
  void write_metrics_json(std::ostream& out) const;
  void write_metrics_prometheus(std::ostream& out) const;
  /// False (and writes nothing) below kFull.
  bool write_trace_json(std::ostream& out) const;

  // Named handles for the wiring sites. Set once in the constructor;
  // incrementing through them is the supported hot-path API.
  Counter runs, bursts, bytes, writes, zeros, transitions, chunks;
  Counter replay_producer_starved, replay_consumer_starved;
  Counter pool_runs, pool_shards;
  Counter rle_chunks, rle_bytes_compressed, rle_bytes_expanded;
  Gauge pool_workers_gauge, trace_file_bytes, trace_payload_bytes,
      trace_crc_ns, trace_rle_expand_ratio, spans_dropped;
  Histogram pool_queue_depth;

 private:
  struct KernelCounters {
    const engine::KernelVariant* variant = nullptr;
    Counter encode, decode, decode_wide;
  };

  /// Upper bound on per-worker busy counters; workers beyond it still
  /// run, they just fold into no counter.
  static constexpr int kMaxTrackedWorkers = 256;

  ObsLevel level_;
  std::unique_ptr<Registry> registry_;
  std::unique_ptr<Tracer> tracer_;
  std::vector<KernelCounters> kernel_counters_;  // registered_kernels() order
  Counter fallback_encode_, fallback_decode_, fallback_decode_wide_;
  Histogram stage_ns_[static_cast<int>(Stage::kCount)];
  // Per-worker busy counters, lock-free on the read side: attach_pool
  // grows the array under worker_mu_ and publishes the new length with
  // a release store; count_worker_busy runs at every pool task boundary
  // on all workers at once, so it must not take a lock.
  mutable std::mutex worker_mu_;  // serializes attach_pool growth only
  Counter worker_busy_[kMaxTrackedWorkers];
  std::atomic<int> worker_busy_count_{0};
};

/// RAII stage span: when `obs` is non-null, at kFull, and the per-site
/// stride sampler selects this span, the destructor records a ring
/// event and feeds the dbi_stage_duration_ns{stage=} histogram. Below
/// kFull (or sampled out) the whole object is a pointer test — no
/// clock reads on the hot path.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(const Observer* obs, Stage stage, std::int64_t a0 = -1,
             std::int32_t a1 = -1) {
    if (obs) open(obs, stage, a0, a1);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { close(); }

  /// Fills in args learned after the span opened (e.g. byte counts).
  void set_args(std::int64_t a0, std::int32_t a1) {
    a0_ = a0;
    a1_ = a1;
  }

  [[nodiscard]] bool active() const { return obs_ != nullptr; }

 private:
  void open(const Observer* obs, Stage stage, std::int64_t a0,
            std::int32_t a1);
  void close();

  const Observer* obs_ = nullptr;  // null = inactive span
  Tracer* tracer_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::int64_t a0_ = -1;
  std::int32_t a1_ = -1;
  Stage stage_ = Stage::kCount;
};

}  // namespace dbi::obs
