#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dbi::sim {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::sem() const {
  return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

Accumulator& Accumulator::operator+=(const Accumulator& other) {
  if (other.n_ == 0) return *this;
  if (n_ == 0) {
    *this = other;
    return *this;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n;
  mean_ += delta * static_cast<double>(other.n_) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
  return *this;
}

}  // namespace dbi::sim
