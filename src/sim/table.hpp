// Minimal aligned-text / CSV table printer for the benchmark harnesses:
// every bench binary prints the rows/series of its paper figure through
// this class, so outputs are uniform and machine-extractable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dbi::sim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

  /// Right-aligned fixed-width text rendering (numeric-table style).
  [[nodiscard]] std::string to_text() const;
  /// RFC-4180-ish CSV (quotes cells containing commas/quotes).
  [[nodiscard]] std::string to_csv() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("%.*f") for table cells.
[[nodiscard]] std::string fmt(double value, int precision = 3);

/// Engineering formatting with a unit suffix, e.g. fmt_eng(1.66e-12,"J")
/// == "1.660 pJ".
[[nodiscard]] std::string fmt_eng(double value, const std::string& unit,
                                  int precision = 3);

}  // namespace dbi::sim
