#include "sim/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dbi::sim {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row width != header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      os << std::string(width[c] - row[c].size(), ' ') << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << quote(headers_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << quote(row[c]);
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_text();
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_eng(double value, const std::string& unit, int precision) {
  static constexpr struct {
    double scale;
    const char* prefix;
  } kScales[] = {{1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
                 {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"},
                 {1e-15, "f"}, {1e-18, "a"}};
  if (value == 0.0) return fmt(0.0, precision) + " " + unit;
  const double mag = std::fabs(value);
  for (const auto& s : kScales)
    if (mag >= s.scale)
      return fmt(value / s.scale, precision) + " " + s.prefix + unit;
  const auto& last = kScales[std::size(kScales) - 1];
  return fmt(value / last.scale, precision) + " " + last.prefix + unit;
}

}  // namespace dbi::sim
