// Experiment engines for every figure of the paper's evaluation.
// Shared by the bench binaries (which print the series), the tests
// (which assert the paper's claims as properties with tolerances) and
// EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "api/stream_stats.hpp"
#include "core/burst.hpp"
#include "core/encoder.hpp"
#include "power/encoder_energy.hpp"
#include "power/pod_params.hpp"
#include "workload/trace.hpp"

namespace dbi::sim {

/// The 8-byte burst of the paper's Fig. 2 worked example.
[[nodiscard]] dbi::Burst paper_example_burst();

/// Mean zeros / transitions per burst of a scheme over a trace, using
/// the paper's per-burst all-ones boundary condition.
struct MeanStats {
  double zeros = 0.0;
  double transitions = 0.0;
};
[[nodiscard]] MeanStats mean_stats(const workload::BurstTrace& trace,
                                   const dbi::Encoder& encoder);

/// Engine-routed twin: encodes through the dbi::Session facade over
/// the batch-engine fast paths (bit-exact vs the scalar encoder, much
/// faster on big traces).
[[nodiscard]] MeanStats mean_stats(const workload::BurstTrace& trace,
                                   dbi::Scheme scheme,
                                   const dbi::CostWeights& w = {});

/// Like mean_stats, but threading the true line state from burst to
/// burst (real memory-controller behaviour) instead of resetting to
/// the paper's all-ones boundary before every burst. Quantifies how
/// much the paper's per-burst boundary assumption matters.
[[nodiscard]] MeanStats mean_stats_chained(const workload::BurstTrace& trace,
                                           const dbi::Encoder& encoder);

/// Engine-routed twin of mean_stats_chained.
[[nodiscard]] MeanStats mean_stats_chained(const workload::BurstTrace& trace,
                                           dbi::Scheme scheme,
                                           const dbi::CostWeights& w = {});

/// Per-burst means and interface energy of a finished streaming run
/// (Session::run / replay totals), computed from the unified 64-bit
/// StreamStats instead of a second pass over the data.
struct ReplaySummary {
  double zeros = 0.0;        ///< per burst
  double transitions = 0.0;  ///< per burst
  double interface_pj = 0.0; ///< per burst; 0 unless a pod is given
};
[[nodiscard]] ReplaySummary summarize_replay(
    const dbi::StreamStats& totals, const power::PodParams* pod = nullptr);

// ------------------------------------------------------------ wide buses

/// One geometry point of the wide-bus width sweep.
struct WideWidthPoint {
  int width = 0;             ///< total DQ lines (groups = ceil(width/8))
  std::int64_t bursts = 0;   ///< wide bursts the payload decomposed into
  double zeros = 0.0;        ///< per burst, summed over all groups
  double transitions = 0.0;  ///< per burst, summed over all groups
};

/// Encodes the same payload byte stream as packed beat-major wide
/// bursts at each width in `widths` (x16/x32/x64 and friends) through
/// the engine's per-group kernels — the engine-speed twin of the
/// paper's bus-width ablation, at traffic volumes the scalar path
/// cannot reach. `bytes.size()` must be a multiple of every width's
/// WideBusConfig::bytes_per_burst(); remainder-group bytes are masked
/// to the group width before encoding.
[[nodiscard]] std::vector<WideWidthPoint> wide_width_sweep(
    dbi::Scheme scheme, const dbi::CostWeights& w,
    std::span<const std::uint8_t> bytes, int burst_length,
    std::span<const int> widths);

// ---------------------------------------------------------------- Fig. 3/4

/// One x-axis point of the Fig. 3/4 sweep: cost weights
/// (alpha, beta) = (ac_cost, 1 - ac_cost), column values are the mean
/// abstract energy (alpha * transitions + beta * zeros) per burst.
struct AlphaSweepPoint {
  double ac_cost = 0.0;
  double raw = 0.0;
  double dc = 0.0;
  double ac = 0.0;
  double acdc = 0.0;
  double opt = 0.0;        ///< DBI OPT with exact (alpha, beta)
  double opt_fixed = 0.0;  ///< DBI OPT (Fixed): encoded with alpha=beta=1
};

/// Sweeps ac_cost over `steps` evenly spaced points in [0, 1].
[[nodiscard]] std::vector<AlphaSweepPoint> alpha_sweep(
    const workload::BurstTrace& trace, int steps);

/// Scalar findings the paper reports in the Fig. 3/4 prose.
struct AlphaSweepSummary {
  double ac_dc_crossover = 0.0;   ///< alpha where AC becomes < DC (paper 0.56)
  double max_gain_opt = 0.0;      ///< peak (best_conv-opt)/best_conv (6.75 %)
  double max_gain_opt_alpha = 0.0;
  double max_gain_fixed = 0.0;    ///< same for OPT (Fixed) (paper 6.58 %)
  double fixed_win_lo = 1.0;      ///< alpha range where fixed beats best
  double fixed_win_hi = 0.0;      ///<   conventional scheme (paper 0.23-0.79)
};
[[nodiscard]] AlphaSweepSummary summarize_alpha_sweep(
    std::span<const AlphaSweepPoint> sweep);

// ------------------------------------------------------------------ Fig. 7

/// One data-rate point: interface energy per burst of each scheme
/// normalised to RAW transmission (the Fig. 7 y-axis).
struct RateSweepPoint {
  double gbps = 0.0;
  double raw_pj = 0.0;  ///< absolute RAW interface energy per burst [pJ]
  double dc = 0.0;
  double ac = 0.0;
  double opt = 0.0;        ///< re-encoded with this rate's true weights
  double opt_fixed = 0.0;
};
[[nodiscard]] std::vector<RateSweepPoint> datarate_sweep(
    const power::PodParams& interface, const workload::BurstTrace& trace,
    std::span<const double> rates_gbps);

// ------------------------------------------------------------------ Fig. 8

/// One data-rate point of the Fig. 8 study: total energy (interface +
/// encoder) of OPT (Fixed) normalised to the better of DC and AC.
struct TotalEnergyPoint {
  double gbps = 0.0;
  double opt_fixed_total_pj = 0.0;
  double best_conventional_total_pj = 0.0;
  double ratio = 0.0;  ///< the Fig. 8 y-axis
};
[[nodiscard]] std::vector<TotalEnergyPoint> total_energy_sweep(
    const power::PodParams& interface, const workload::BurstTrace& trace,
    std::span<const double> rates_gbps,
    const power::EncoderHardware& hw_dc, const power::EncoderHardware& hw_ac,
    const power::EncoderHardware& hw_opt_fixed);

// -------------------------------------------------------------- Ablations

/// Coefficient quantisation: mean cost of OPT with `bits`-wide integer
/// coefficients relative to exact-coefficient OPT, at given weights.
struct QuantizationPoint {
  int bits = 0;
  double mean_cost = 0.0;
  double loss_vs_exact = 0.0;  ///< (quantised - exact) / exact
};
[[nodiscard]] std::vector<QuantizationPoint> quantization_sweep(
    const workload::BurstTrace& trace, const dbi::CostWeights& weights,
    int max_bits);

/// Lookahead ablation: mean cost of windowed OPT for each window size.
struct WindowPoint {
  int window = 0;
  double mean_cost = 0.0;
  double loss_vs_full = 0.0;
};
[[nodiscard]] std::vector<WindowPoint> window_sweep(
    const workload::BurstTrace& trace, const dbi::CostWeights& weights,
    std::span<const int> windows);

/// DBI granularity study (Narayanan-style enhanced bus invert,
/// paper Section II): split every lane into `groups` equal sub-groups,
/// each with its own DBI wire, and OPT-encode each sub-group. More
/// wires buy finer inversion control; this quantifies the trade.
struct GranularityPoint {
  int groups = 1;       ///< DBI wires per 8-bit lane
  int total_lines = 9;  ///< DQ + DBI wires per lane
  double mean_cost = 0.0;
  double vs_single_dbi = 0.0;  ///< cost relative to the 1-wire scheme
};
[[nodiscard]] std::vector<GranularityPoint> granularity_sweep(
    const workload::BurstTrace& trace, const dbi::CostWeights& weights,
    std::span<const int> group_counts);

/// Decision-noise study (analog implementations, paper Section II):
/// mean cost of a noisy OPT encoder vs its clean version. The encoding
/// stays decodable for every error rate — only energy degrades.
struct NoisePoint {
  double error_rate = 0.0;
  double mean_cost = 0.0;
  double loss_vs_clean = 0.0;
};
[[nodiscard]] std::vector<NoisePoint> noise_sweep(
    const workload::BurstTrace& trace, const dbi::CostWeights& weights,
    std::span<const double> error_rates, std::uint64_t seed);

}  // namespace dbi::sim
