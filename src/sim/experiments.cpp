#include "sim/experiments.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string_view>

#include "api/session.hpp"
#include "power/interface_energy.hpp"
#include "power/system_energy.hpp"
#include "sim/stats.hpp"

namespace dbi::sim {

namespace {

using dbi::BurstStats;
using dbi::BusState;
using dbi::CostWeights;
using dbi::Encoder;
using dbi::Scheme;

/// Sum of (zeros, transitions) of `encoder` over the whole trace with
/// the paper's per-burst all-ones boundary.
BurstStats total_stats(const workload::BurstTrace& trace,
                       const Encoder& encoder) {
  const BusState boundary = BusState::all_ones(trace.config());
  BurstStats total;
  for (const dbi::Burst& b : trace.bursts())
    total += encoder.encode(b, boundary).stats(boundary);
  return total;
}

/// Facade-routed totals: same contract as total_stats but through a
/// dbi::Session over the engine fast paths (bit-exact, no per-burst
/// materialisation). Returned as 64-bit StreamStats.
dbi::StreamStats total_stream_stats(const workload::BurstTrace& trace,
                                    Scheme scheme, const CostWeights& w = {},
                                    dbi::StatePolicy policy =
                                        dbi::StatePolicy::kResetPerBurst) {
  dbi::SessionSpec spec;
  spec.scheme = scheme;
  spec.geometry = dbi::Geometry::of(trace.config());
  spec.weights = w;
  spec.state_policy = policy;
  dbi::Session session(spec);
  const auto source = dbi::make_burst_source(trace.bursts());
  return session.run(*source);
}

double mean_cost_from_totals(const dbi::StreamStats& totals, std::size_t n,
                             const CostWeights& w) {
  return n ? (w.alpha * static_cast<double>(totals.transitions) +
              w.beta * static_cast<double>(totals.zeros)) /
                 static_cast<double>(n)
           : 0.0;
}

}  // namespace

dbi::Burst paper_example_burst() {
  static constexpr std::array<std::string_view, 8> kBytes = {
      "10001110", "10000110", "10010110", "11101001",
      "01111101", "10110111", "01010111", "11000100"};
  return dbi::Burst::from_bit_strings(dbi::BusConfig{8, 8}, kBytes);
}

MeanStats mean_stats(const workload::BurstTrace& trace,
                     const dbi::Encoder& encoder) {
  if (trace.empty()) return {};
  const BurstStats totals = total_stats(trace, encoder);
  const auto n = static_cast<double>(trace.size());
  return MeanStats{totals.zeros / n, totals.transitions / n};
}

MeanStats mean_stats(const workload::BurstTrace& trace, Scheme scheme,
                     const dbi::CostWeights& w) {
  if (trace.empty()) return {};
  const dbi::StreamStats totals = total_stream_stats(trace, scheme, w);
  return MeanStats{totals.zeros_per_burst(), totals.transitions_per_burst()};
}

MeanStats mean_stats_chained(const workload::BurstTrace& trace,
                             const dbi::Encoder& encoder) {
  if (trace.empty()) return {};
  BusState state = BusState::all_ones(trace.config());
  BurstStats totals;
  for (const dbi::Burst& b : trace.bursts()) {
    const dbi::EncodedBurst e = encoder.encode(b, state);
    totals += e.stats(state);
    state = e.final_state();
  }
  const auto n = static_cast<double>(trace.size());
  return MeanStats{totals.zeros / n, totals.transitions / n};
}

MeanStats mean_stats_chained(const workload::BurstTrace& trace, Scheme scheme,
                             const dbi::CostWeights& w) {
  if (trace.empty()) return {};
  const dbi::StreamStats totals =
      total_stream_stats(trace, scheme, w, dbi::StatePolicy::kThread);
  return MeanStats{totals.zeros_per_burst(), totals.transitions_per_burst()};
}

ReplaySummary summarize_replay(const dbi::StreamStats& totals,
                               const power::PodParams* pod) {
  ReplaySummary s;
  if (totals.bursts == 0) return s;
  s.zeros = totals.zeros_per_burst();
  s.transitions = totals.transitions_per_burst();
  if (pod) {
    const double e_zero = power::energy_zero(*pod);
    const double e_trans = power::energy_transition(*pod);
    s.interface_pj = (s.zeros * e_zero + s.transitions * e_trans) * 1e12;
  }
  return s;
}

std::vector<WideWidthPoint> wide_width_sweep(dbi::Scheme scheme,
                                             const dbi::CostWeights& w,
                                             std::span<const std::uint8_t> bytes,
                                             int burst_length,
                                             std::span<const int> widths) {
  std::vector<WideWidthPoint> out;
  out.reserve(widths.size());
  std::vector<std::uint8_t> masked;
  for (const int width : widths) {
    const dbi::Geometry geometry = dbi::Geometry::wide(width, burst_length);
    geometry.validate();
    const auto bb = static_cast<std::size_t>(geometry.bytes_per_burst());
    if (bytes.empty() || bytes.size() % bb != 0)
      throw std::invalid_argument(
          "wide_width_sweep: payload of " + std::to_string(bytes.size()) +
          " bytes is not a non-empty multiple of the " + std::to_string(bb) +
          "-byte packed burst at width " + std::to_string(width));

    // The same byte stream feeds every width; only a remainder group's
    // bytes need masking down to its narrower lane count.
    std::span<const std::uint8_t> view = bytes;
    const auto groups = static_cast<std::size_t>(geometry.groups());
    const dbi::WideBusConfig cfg = geometry.wide_bus();
    if (cfg.group_width(cfg.groups() - 1) < 8) {
      masked.assign(bytes.begin(), bytes.end());
      const auto gmask =
          static_cast<std::uint8_t>(cfg.group_mask(cfg.groups() - 1));
      for (std::size_t p = groups - 1; p < masked.size(); p += groups)
        masked[p] &= gmask;
      view = masked;
    }

    dbi::SessionSpec spec;
    spec.scheme = scheme;
    spec.geometry = geometry;
    spec.weights = w;
    dbi::Session session(spec);
    const auto source = dbi::make_packed_source(view);
    const dbi::StreamStats totals = session.run(*source);

    WideWidthPoint point;
    point.width = width;
    point.bursts = totals.bursts;
    point.zeros = totals.zeros_per_burst();
    point.transitions = totals.transitions_per_burst();
    out.push_back(point);
  }
  return out;
}

std::vector<AlphaSweepPoint> alpha_sweep(const workload::BurstTrace& trace,
                                         int steps) {
  if (steps < 2) throw std::invalid_argument("alpha_sweep: steps < 2");
  if (trace.empty()) throw std::invalid_argument("alpha_sweep: empty trace");

  // Encoding decisions of RAW / DC / AC / ACDC / OPT(Fixed) do not
  // depend on (alpha, beta); their mean cost is linear in the weights,
  // so one engine pass collecting totals suffices for every sweep point.
  const dbi::StreamStats raw = total_stream_stats(trace, Scheme::kRaw);
  const dbi::StreamStats dc = total_stream_stats(trace, Scheme::kDc);
  const dbi::StreamStats ac = total_stream_stats(trace, Scheme::kAc);
  const dbi::StreamStats acdc = total_stream_stats(trace, Scheme::kAcDc);
  const dbi::StreamStats fixed = total_stream_stats(trace, Scheme::kOptFixed);

  std::vector<AlphaSweepPoint> sweep;
  sweep.reserve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    const double ac_cost =
        static_cast<double>(i) / static_cast<double>(steps - 1);
    const CostWeights w = CostWeights::ac_dc_tradeoff(ac_cost);

    AlphaSweepPoint p;
    p.ac_cost = ac_cost;
    p.raw = mean_cost_from_totals(raw, trace.size(), w);
    p.dc = mean_cost_from_totals(dc, trace.size(), w);
    p.ac = mean_cost_from_totals(ac, trace.size(), w);
    p.acdc = mean_cost_from_totals(acdc, trace.size(), w);
    p.opt_fixed = mean_cost_from_totals(fixed, trace.size(), w);

    // DBI OPT re-decides per sweep point; its cost is the weighted sum
    // of its own totals, collected through the flat trellis kernel.
    p.opt = mean_cost_from_totals(total_stream_stats(trace, Scheme::kOpt, w),
                                  trace.size(), w);

    sweep.push_back(p);
  }
  return sweep;
}

AlphaSweepSummary summarize_alpha_sweep(
    std::span<const AlphaSweepPoint> sweep) {
  if (sweep.size() < 2)
    throw std::invalid_argument("summarize_alpha_sweep: too few points");
  AlphaSweepSummary s;

  // First sweep point where AC is strictly cheaper than DC.
  s.ac_dc_crossover = sweep.back().ac_cost;
  for (const AlphaSweepPoint& p : sweep) {
    if (p.ac < p.dc) {
      s.ac_dc_crossover = p.ac_cost;
      break;
    }
  }

  for (const AlphaSweepPoint& p : sweep) {
    const double best_conv = std::min(p.dc, p.ac);
    if (best_conv <= 0.0) continue;
    const double gain_opt = (best_conv - p.opt) / best_conv;
    if (gain_opt > s.max_gain_opt) {
      s.max_gain_opt = gain_opt;
      s.max_gain_opt_alpha = p.ac_cost;
    }
    const double gain_fixed = (best_conv - p.opt_fixed) / best_conv;
    s.max_gain_fixed = std::max(s.max_gain_fixed, gain_fixed);
    if (p.opt_fixed < best_conv) {
      s.fixed_win_lo = std::min(s.fixed_win_lo, p.ac_cost);
      s.fixed_win_hi = std::max(s.fixed_win_hi, p.ac_cost);
    }
  }
  return s;
}

std::vector<RateSweepPoint> datarate_sweep(const power::PodParams& interface,
                                           const workload::BurstTrace& trace,
                                           std::span<const double> rates_gbps) {
  if (trace.empty())
    throw std::invalid_argument("datarate_sweep: empty trace");

  const dbi::StreamStats raw = total_stream_stats(trace, Scheme::kRaw);
  const dbi::StreamStats dc = total_stream_stats(trace, Scheme::kDc);
  const dbi::StreamStats ac = total_stream_stats(trace, Scheme::kAc);
  const dbi::StreamStats fixed = total_stream_stats(trace, Scheme::kOptFixed);

  const auto n = static_cast<double>(trace.size());

  std::vector<RateSweepPoint> sweep;
  sweep.reserve(rates_gbps.size());
  for (double gbps : rates_gbps) {
    const power::PodParams pod = interface.at_rate(gbps * 1e9);
    const CostWeights w = power::weights_from_pod(pod);

    // DBI OPT re-encodes at this operating point's true energy weights;
    // burst energy is linear in the stats, so the 64-bit totals suffice
    // (Eq. 4 applied directly — no narrowing back to int counters).
    const dbi::StreamStats opt_stream = total_stream_stats(trace, Scheme::kOpt, w);
    const double opt_energy =
        static_cast<double>(opt_stream.zeros) * power::energy_zero(pod) +
        static_cast<double>(opt_stream.transitions) *
            power::energy_transition(pod);

    RateSweepPoint p;
    p.gbps = gbps;
    const double raw_j = mean_cost_from_totals(raw, trace.size(), w);
    p.raw_pj = raw_j * 1e12;
    if (raw_j <= 0.0)
      throw std::runtime_error("datarate_sweep: degenerate RAW energy");
    p.dc = mean_cost_from_totals(dc, trace.size(), w) / raw_j;
    p.ac = mean_cost_from_totals(ac, trace.size(), w) / raw_j;
    p.opt = opt_energy / n / raw_j;
    p.opt_fixed = mean_cost_from_totals(fixed, trace.size(), w) / raw_j;
    sweep.push_back(p);
  }
  return sweep;
}

std::vector<TotalEnergyPoint> total_energy_sweep(
    const power::PodParams& interface, const workload::BurstTrace& trace,
    std::span<const double> rates_gbps, const power::EncoderHardware& hw_dc,
    const power::EncoderHardware& hw_ac,
    const power::EncoderHardware& hw_opt_fixed) {
  if (trace.empty())
    throw std::invalid_argument("total_energy_sweep: empty trace");

  const dbi::StreamStats dc = total_stream_stats(trace, Scheme::kDc);
  const dbi::StreamStats ac = total_stream_stats(trace, Scheme::kAc);
  const dbi::StreamStats fixed = total_stream_stats(trace, Scheme::kOptFixed);
  const auto n = static_cast<double>(trace.size());
  const dbi::BusConfig& cfg = trace.config();

  std::vector<TotalEnergyPoint> sweep;
  sweep.reserve(rates_gbps.size());
  for (double gbps : rates_gbps) {
    const power::PodParams pod = interface.at_rate(gbps * 1e9);
    const double rate = power::burst_rate(pod, cfg);
    const CostWeights w = power::weights_from_pod(pod);

    auto total = [&](const dbi::StreamStats& totals,
                     const power::EncoderHardware& hw) {
      return mean_cost_from_totals(totals, trace.size(), w) +
             hw.energy_per_burst(rate);
    };

    TotalEnergyPoint p;
    p.gbps = gbps;
    p.opt_fixed_total_pj = total(fixed, hw_opt_fixed) * 1e12;
    p.best_conventional_total_pj =
        std::min(total(dc, hw_dc), total(ac, hw_ac)) * 1e12;
    p.ratio = p.opt_fixed_total_pj / p.best_conventional_total_pj;
    sweep.push_back(p);
    (void)n;
  }
  return sweep;
}

std::vector<QuantizationPoint> quantization_sweep(
    const workload::BurstTrace& trace, const dbi::CostWeights& weights,
    int max_bits) {
  if (max_bits < 1)
    throw std::invalid_argument("quantization_sweep: max_bits < 1");

  const BusState boundary = BusState::all_ones(trace.config());
  const auto exact = dbi::make_opt_encoder(weights);
  Accumulator exact_cost;
  for (const dbi::Burst& b : trace.bursts())
    exact_cost.add(encoded_cost(exact->encode(b, boundary), boundary,
                                weights));

  std::vector<QuantizationPoint> sweep;
  sweep.reserve(static_cast<std::size_t>(max_bits));
  for (int bits = 1; bits <= max_bits; ++bits) {
    const dbi::IntCostWeights qw = dbi::quantize_weights(weights, bits);
    const auto enc = dbi::make_opt_int_encoder(qw);
    Accumulator cost;
    for (const dbi::Burst& b : trace.bursts())
      cost.add(encoded_cost(enc->encode(b, boundary), boundary, weights));
    QuantizationPoint p;
    p.bits = bits;
    p.mean_cost = cost.mean();
    p.loss_vs_exact = exact_cost.mean() > 0.0
                          ? (cost.mean() - exact_cost.mean()) /
                                exact_cost.mean()
                          : 0.0;
    sweep.push_back(p);
  }
  return sweep;
}

std::vector<GranularityPoint> granularity_sweep(
    const workload::BurstTrace& trace, const dbi::CostWeights& weights,
    std::span<const int> group_counts) {
  const dbi::BusConfig& cfg = trace.config();
  std::vector<GranularityPoint> sweep;
  double single_dbi_cost = 0.0;
  for (int groups : group_counts) {
    if (groups < 1 || cfg.width % groups != 0)
      throw std::invalid_argument(
          "granularity_sweep: groups must divide the lane width");
    const int sub_width = cfg.width / groups;
    dbi::BusConfig sub_cfg = cfg;
    sub_cfg.width = sub_width;
    const BusState boundary = BusState::all_ones(sub_cfg);
    const auto encoder = dbi::make_opt_encoder(weights);

    Accumulator cost;
    for (const dbi::Burst& b : trace.bursts()) {
      double burst_cost_sum = 0.0;
      for (int g = 0; g < groups; ++g) {
        dbi::Burst sub(sub_cfg);
        for (int beat = 0; beat < cfg.burst_length; ++beat)
          sub.set_word(beat,
                       (b.word(beat) >> (g * sub_width)) & sub_cfg.dq_mask());
        burst_cost_sum +=
            encoded_cost(encoder->encode(sub, boundary), boundary, weights);
      }
      cost.add(burst_cost_sum);
    }

    GranularityPoint p;
    p.groups = groups;
    p.total_lines = cfg.width + groups;
    p.mean_cost = cost.mean();
    if (groups == 1) single_dbi_cost = p.mean_cost;
    p.vs_single_dbi =
        single_dbi_cost > 0.0 ? p.mean_cost / single_dbi_cost : 1.0;
    sweep.push_back(p);
  }
  return sweep;
}

std::vector<NoisePoint> noise_sweep(const workload::BurstTrace& trace,
                                    const dbi::CostWeights& weights,
                                    std::span<const double> error_rates,
                                    std::uint64_t seed) {
  const BusState boundary = BusState::all_ones(trace.config());
  const auto clean = dbi::make_opt_encoder(weights);
  Accumulator clean_cost;
  for (const dbi::Burst& b : trace.bursts())
    clean_cost.add(encoded_cost(clean->encode(b, boundary), boundary,
                                weights));

  std::vector<NoisePoint> sweep;
  sweep.reserve(error_rates.size());
  for (double rate : error_rates) {
    const auto noisy =
        dbi::make_noisy_encoder(dbi::make_opt_encoder(weights), rate, seed);
    Accumulator cost;
    for (const dbi::Burst& b : trace.bursts())
      cost.add(encoded_cost(noisy->encode(b, boundary), boundary, weights));
    NoisePoint p;
    p.error_rate = rate;
    p.mean_cost = cost.mean();
    p.loss_vs_clean = clean_cost.mean() > 0.0
                          ? (cost.mean() - clean_cost.mean()) /
                                clean_cost.mean()
                          : 0.0;
    sweep.push_back(p);
  }
  return sweep;
}

std::vector<WindowPoint> window_sweep(const workload::BurstTrace& trace,
                                      const dbi::CostWeights& weights,
                                      std::span<const int> windows) {
  const BusState boundary = BusState::all_ones(trace.config());
  const auto full = dbi::make_opt_encoder(weights);
  Accumulator full_cost;
  for (const dbi::Burst& b : trace.bursts())
    full_cost.add(encoded_cost(full->encode(b, boundary), boundary, weights));

  std::vector<WindowPoint> sweep;
  sweep.reserve(windows.size());
  for (int window : windows) {
    const auto enc = dbi::make_windowed_opt_encoder(weights, window);
    Accumulator cost;
    for (const dbi::Burst& b : trace.bursts())
      cost.add(encoded_cost(enc->encode(b, boundary), boundary, weights));
    WindowPoint p;
    p.window = window;
    p.mean_cost = cost.mean();
    p.loss_vs_full =
        full_cost.mean() > 0.0
            ? (cost.mean() - full_cost.mean()) / full_cost.mean()
            : 0.0;
    sweep.push_back(p);
  }
  return sweep;
}

}  // namespace dbi::sim
