// Streaming statistics accumulator (Welford) used by every experiment.
#pragma once

#include <cstdint>

namespace dbi::sim {

class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }
  /// Mean of the added samples; 0 when empty.
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean; 0 for fewer than two samples.
  [[nodiscard]] double sem() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  Accumulator& operator+=(const Accumulator& other);

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dbi::sim
