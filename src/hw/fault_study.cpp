#include "hw/fault_study.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/byte_utils.hpp"
#include "core/encoder.hpp"
#include "hw/hw_design.hpp"
#include "netlist/sim.hpp"
#include "workload/rng.hpp"

namespace dbi::hw {

namespace {

/// Raw netlist encode: returns the (possibly incoherent) wire image —
/// unlike HwEncoder it does not insist the datapath matches the DBI
/// mask, because characterising exactly that incoherence is the point.
std::vector<dbi::Beat> raw_encode(const HwDesign& design,
                                  netlist::Simulator& sim,
                                  const dbi::Burst& burst) {
  for (int i = 0; i < burst.length(); ++i)
    sim.set_input_bus(design.byte_in[static_cast<std::size_t>(i)],
                      burst.word(i));
  sim.eval();
  std::vector<dbi::Beat> beats;
  beats.reserve(static_cast<std::size_t>(burst.length()));
  for (int i = 0; i < burst.length(); ++i)
    beats.push_back(dbi::Beat{
        static_cast<dbi::Word>(
            sim.bus(design.data_out[static_cast<std::size_t>(i)])),
        sim.value(design.dbi_out[static_cast<std::size_t>(i)])});
  return beats;
}

}  // namespace

FaultStudyResult run_fault_study(const workload::BurstTrace& trace,
                                 const FaultStudyOptions& options) {
  if (trace.empty())
    throw std::invalid_argument("run_fault_study: empty trace");
  if (trace.config().width != 8 ||
      trace.config().burst_length != options.bytes)
    throw std::invalid_argument("run_fault_study: geometry mismatch");
  if (options.bursts_per_fault < 1)
    throw std::invalid_argument("run_fault_study: bursts_per_fault < 1");

  const HwDesign design = build_dbi_opt_fixed(options.bytes);
  netlist::Simulator sim(design.net);
  const dbi::BusConfig& cfg = trace.config();
  const dbi::BusState boundary = dbi::BusState::all_ones(cfg);
  const dbi::CostWeights unit{1.0, 1.0};
  const auto reference = dbi::make_opt_fixed_encoder();

  const int bursts =
      std::min<int>(options.bursts_per_fault,
                    static_cast<int>(trace.size()));

  // Reference outputs and optimal costs for the evaluation bursts.
  std::vector<std::vector<dbi::Beat>> golden;
  std::vector<double> optimal_cost;
  for (int b = 0; b < bursts; ++b) {
    golden.push_back(raw_encode(design, sim, trace[static_cast<std::size_t>(b)]));
    optimal_cost.push_back(encoded_cost(
        reference->encode(trace[static_cast<std::size_t>(b)], boundary),
        boundary, unit));
  }

  // Sample fault sites among physical gates.
  std::vector<netlist::NetId> sites;
  for (netlist::NetId id = 0; id < design.net.size(); ++id)
    if (netlist::is_physical(design.net.gate(id).kind)) sites.push_back(id);
  if (options.max_sites > 0 &&
      sites.size() > static_cast<std::size_t>(options.max_sites)) {
    workload::Xoshiro256 rng(options.seed);
    for (std::size_t i = sites.size() - 1; i > 0; --i)
      std::swap(sites[i], sites[rng.next_below(i + 1)]);
    sites.resize(static_cast<std::size_t>(options.max_sites));
  }

  FaultStudyResult result;
  for (netlist::NetId site : sites) {
    FaultEffect effect = FaultEffect::kBenign;
    double worst_increase = 0.0;
    for (bool stuck : {false, true}) {
      sim.clear_faults();
      sim.inject_stuck_at(site, stuck);
      for (int b = 0; b < bursts; ++b) {
        const dbi::Burst& burst = trace[static_cast<std::size_t>(b)];
        const auto beats = raw_encode(design, sim, burst);
        if (beats == golden[static_cast<std::size_t>(b)]) continue;
        // Outputs differ: decodable (suboptimal) or corrupting?
        bool corrupt = false;
        for (int i = 0; i < burst.length() && !corrupt; ++i) {
          const dbi::Beat& beat = beats[static_cast<std::size_t>(i)];
          const dbi::Word decoded =
              beat.dbi ? beat.dq : dbi::invert(beat.dq, cfg);
          corrupt = decoded != burst.word(i);
        }
        if (corrupt) {
          effect = FaultEffect::kCorrupting;
          break;
        }
        if (effect == FaultEffect::kBenign)
          effect = FaultEffect::kSuboptimal;
        const double cost = burst_cost(
            dbi::EncodedBurst(cfg, beats).stats(boundary), unit);
        worst_increase = std::max(
            worst_increase,
            (cost - optimal_cost[static_cast<std::size_t>(b)]) /
                optimal_cost[static_cast<std::size_t>(b)]);
      }
      if (effect == FaultEffect::kCorrupting) break;
    }
    sim.clear_faults();
    ++result.sites_tested;
    switch (effect) {
      case FaultEffect::kBenign:
        ++result.benign;
        break;
      case FaultEffect::kSuboptimal:
        ++result.suboptimal;
        result.worst_cost_increase =
            std::max(result.worst_cost_increase, worst_increase);
        break;
      case FaultEffect::kCorrupting:
        ++result.corrupting;
        break;
    }
  }
  return result;
}

}  // namespace dbi::hw
