// Table I generator: synthesises (area / power / timing via the
// netlist substrate) the four encoder designs and reports them in the
// paper's format. Also exports netlist-derived EncoderHardware models
// as an alternative provenance for the Fig. 8 study.
#pragma once

#include <string>
#include <vector>

#include "power/encoder_energy.hpp"
#include "workload/trace.hpp"

namespace dbi::hw {

struct Table1Row {
  std::string scheme;
  std::size_t cells = 0;
  double area_um2 = 0.0;
  double static_uw = 0.0;
  /// Dynamic power at the reported burst rate (like the paper, which
  /// measured each design at the rate it closes timing at, capped by
  /// the 1.5 GHz channel requirement).
  double dynamic_uw = 0.0;
  double burst_rate_ghz = 0.0;    ///< operating rate = min(fmax, target)
  double fmax_ghz = 0.0;          ///< raw timing limit of the pipeline
  double total_uw = 0.0;
  double energy_per_burst_pj = 0.0;
  double critical_path_ns = 0.0;  ///< pre-retiming combinational depth
  int units_for_target = 1;       ///< parallel instances to hit target
};

struct Table1Options {
  int bytes = 8;
  /// Coefficients driven into the configurable design while measuring
  /// switching activity (any legal pair; activity barely depends on it).
  int alpha = 3;
  int beta = 2;
  /// Bursts of `activity_trace` replayed through each netlist.
  std::int64_t max_activity_bursts = 2000;
  /// Channel requirement: 12 Gbps GDDR5X = 1.5e9 bursts/s (Section IV-B).
  double target_burst_rate_hz = 1.5e9;
};

/// Synthesises DBI DC / DBI AC / DBI OPT (Fixed) / DBI OPT (3-bit).
[[nodiscard]] std::vector<Table1Row> table1_synthesis(
    const workload::BurstTrace& activity_trace, const Table1Options& options);

/// Converts a synthesis row into the Fig. 8 encoder-energy model
/// (netlist-derived alternative to power::table1_hardware()).
[[nodiscard]] power::EncoderHardware to_encoder_hardware(const Table1Row& row);

}  // namespace dbi::hw
