// Stuck-at fault robustness study on the DBI OPT (Fixed) netlist.
//
// Motivated by the paper's Section II remark on analog implementations:
// "rare inaccurate encoding decision are unlikely to cause application
// errors" — because a wrong *decision* merely transmits a legal but
// suboptimal encoding, which the receiver still decodes correctly. A
// fault is only dangerous when it corrupts the data/DBI coherence.
// This study makes that argument quantitative: every stuck-at fault
// site in the encoder is classified by its worst observed effect.
#pragma once

#include <cstdint>

#include "workload/trace.hpp"

namespace dbi::hw {

enum class FaultEffect {
  kBenign,      ///< outputs identical to the fault-free encoder
  kSuboptimal,  ///< decodable, but costlier than optimal on some burst
  kCorrupting,  ///< decode(output) != payload on some burst
};

struct FaultStudyResult {
  int sites_tested = 0;
  int benign = 0;
  int suboptimal = 0;
  int corrupting = 0;
  /// Largest relative cost increase (alpha = beta = 1) any suboptimal
  /// fault caused, averaged over the evaluation bursts.
  double worst_cost_increase = 0.0;

  [[nodiscard]] double corrupting_fraction() const {
    return sites_tested ? static_cast<double>(corrupting) / sites_tested
                        : 0.0;
  }
};

struct FaultStudyOptions {
  int bytes = 8;
  /// Fault sites sampled (both stuck-at-0 and stuck-at-1 are tried per
  /// site); <= 0 means every physical gate.
  int max_sites = 400;
  /// Bursts evaluated per fault.
  int bursts_per_fault = 40;
  std::uint64_t seed = 1;
};

[[nodiscard]] FaultStudyResult run_fault_study(
    const workload::BurstTrace& trace, const FaultStudyOptions& options);

}  // namespace dbi::hw
