// Gate-level DBI decoder: the receiver side every scheme shares. One
// inverter + eight XORs per byte (out = data XOR ~DBI) — the paper's
// conclusion leans on this asymmetry: encoding needs a trellis, but
// decoding is almost free, so memories can adopt the scheme for reads
// without meaningful die cost.
#include "hw/hw_design.hpp"

#include <stdexcept>

namespace dbi::hw {

using netlist::Bus;
using netlist::NetId;

HwDesign build_dbi_decoder(int bytes) {
  if (bytes < 1 || bytes > 16)
    throw std::invalid_argument("build_dbi_decoder: bytes out of range");

  HwDesign d;
  d.name = "DBI decoder";
  d.pipeline = netlist::PipelineSpec{1, 0, 0.6};
  auto& nl = d.net;

  for (int i = 0; i < bytes; ++i) {
    const Bus data =
        netlist::make_input_bus(nl, "data" + std::to_string(i), 8);
    const NetId dbi = nl.add_input("dbi" + std::to_string(i));
    d.byte_in.push_back(data);
    d.dbi_out.push_back(dbi);  // decoder consumes the DBI line

    const NetId inverted = netlist::inv_fold(nl, dbi);  // dbi==0 -> invert
    const Bus out = netlist::xor_with(nl, data, inverted);
    netlist::mark_output_bus(nl, out, "byte" + std::to_string(i));
    d.data_out.push_back(out);
  }
  return d;
}

}  // namespace dbi::hw
