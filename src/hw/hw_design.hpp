// A DBI encoder design: gate-level netlist plus its port map and the
// pipeline arrangement the paper synthesised it with. All designs
// process one full burst (8 bytes) per cycle, like the implementation
// in Section IV-B, and assume the paper's all-ones bus boundary (the
// previous-burst byte is the 0xFF constant of Fig. 5).
#pragma once

#include <string>
#include <vector>

#include "netlist/blocks.hpp"
#include "netlist/netlist.hpp"
#include "netlist/report.hpp"

namespace dbi::hw {

struct HwDesign {
  std::string name;
  netlist::Netlist net;
  /// byte_in[i] = 8-bit payload bus of beat i.
  std::vector<netlist::Bus> byte_in;
  /// dbi_out[i] = DBI line value of beat i (0 = inverted).
  netlist::Bus dbi_out;
  /// data_out[i] = transmitted (possibly inverted) byte of beat i.
  std::vector<netlist::Bus> data_out;
  /// 3-bit coefficient inputs; empty for fixed-coefficient designs.
  netlist::Bus alpha_in;
  netlist::Bus beta_in;
  /// Pipeline arrangement used for timing / register modelling.
  netlist::PipelineSpec pipeline;
};

/// DBI DC: per-byte popcount + threshold (invert when > 4 zeros).
[[nodiscard]] HwDesign build_dbi_dc(int bytes = 8);

/// DBI AC: per-byte transition count against the previously transmitted
/// byte; serial decision chain across the burst.
[[nodiscard]] HwDesign build_dbi_ac(int bytes = 8);

/// DBI OPT (Fixed): the Fig. 5 shortest-path datapath with
/// alpha = beta = 1 (no multipliers, 9-bit path metrics).
[[nodiscard]] HwDesign build_dbi_opt_fixed(int bytes = 8);

/// DBI OPT with configurable 3-bit coefficients (multipliers, 11-bit
/// path metrics) — Table I row 4.
[[nodiscard]] HwDesign build_dbi_opt_3bit(int bytes = 8);

/// Receiver-side DBI decoder (shared by every scheme): out = data XOR
/// ~DBI. For this design, byte_in are the received data buses, dbi_out
/// holds the DBI *inputs*, and data_out the decoded payload buses.
[[nodiscard]] HwDesign build_dbi_decoder(int bytes = 8);

}  // namespace dbi::hw
