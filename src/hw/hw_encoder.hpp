// Runs a gate-level encoder design on bursts and adapts it to the
// behavioural dbi::Encoder interface, so the netlists can be verified
// bit-for-bit against the reference encoders and used to measure
// realistic switching activity for the Table I power numbers.
#pragma once

#include <memory>
#include <string_view>

#include "core/encoder.hpp"
#include "hw/hw_design.hpp"
#include "netlist/sim.hpp"

namespace dbi::hw {

class HwEncoder final : public dbi::Encoder {
 public:
  /// Takes ownership of the design. For configurable designs the
  /// coefficient inputs are driven with `alpha` / `beta` (must fit the
  /// coefficient ports; fixed designs require alpha == beta == 1).
  explicit HwEncoder(HwDesign design, int alpha = 1, int beta = 1);

  [[nodiscard]] std::string_view name() const override;

  /// Encodes one burst through the netlist. The designs hard-wire the
  /// paper's all-ones boundary, so `prev` must be BusState::all_ones.
  /// Burst geometry must be 8-bit lanes with burst_length equal to the
  /// design's byte count.
  [[nodiscard]] dbi::EncodedBurst encode(const dbi::Burst& data,
                                         const dbi::BusState& prev)
      const override;

  [[nodiscard]] const HwDesign& design() const { return design_; }
  /// Switching activity accumulated across every encode() call.
  [[nodiscard]] const netlist::Simulator& simulator() const { return *sim_; }

 private:
  HwDesign design_;
  int alpha_;
  int beta_;
  std::unique_ptr<netlist::Simulator> sim_;
};

}  // namespace dbi::hw
