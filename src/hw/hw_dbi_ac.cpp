// Gate-level DBI AC encoder (Table I row 2). Per byte the hardware
// counts x = popcount(Byte(i-1) ^ Byte(i)) on the *raw* (non-inverted)
// data; with p = "previous byte was inverted", the transition-optimal
// decision reduces to the closed form
//
//   invert(i) = (x >= 5) XOR p(i-1)
//
// because the 9 lines (8 DQ + DBI) toggle either t or 9 - t wires, and
// inverting both neighbours cancels on the DQ lines. Byte(-1) is the
// all-ones constant of the paper's boundary condition, making the first
// decision identical to DBI DC (x = number of zeros).
#include "hw/hw_design.hpp"

#include <stdexcept>

namespace dbi::hw {

using netlist::Bus;
using netlist::NetId;

HwDesign build_dbi_ac(int bytes) {
  if (bytes < 1 || bytes > 16)
    throw std::invalid_argument("build_dbi_ac: bytes out of range");

  HwDesign d;
  d.name = "DBI AC";
  d.pipeline = netlist::PipelineSpec{1, 0, 0.6};
  auto& nl = d.net;

  for (int i = 0; i < bytes; ++i)
    d.byte_in.push_back(
        netlist::make_input_bus(nl, "byte" + std::to_string(i), 8));

  Bus prev_byte = netlist::make_const_bus(nl, 0xFF, 8);  // Byte(-1)
  NetId prev_inverted = nl.add_const(false);
  for (int i = 0; i < bytes; ++i) {
    const Bus& byte = d.byte_in[static_cast<std::size_t>(i)];
    const Bus diff = netlist::xor_bus(nl, prev_byte, byte);
    const Bus x = netlist::popcount(nl, diff);
    // x >= 5  <=>  !(x < 5)
    const NetId ge5 =
        netlist::inv_fold(nl, netlist::less_than_const(nl, x, 5));
    const NetId invert = netlist::xor_fold(nl, ge5, prev_inverted);

    const NetId dbi = netlist::inv_fold(nl, invert);
    nl.mark_output(dbi, "dbi" + std::to_string(i));
    d.dbi_out.push_back(dbi);

    const Bus out = netlist::xor_with(nl, byte, invert);
    netlist::mark_output_bus(nl, out, "data" + std::to_string(i));
    d.data_out.push_back(out);

    prev_byte = byte;
    prev_inverted = invert;
  }
  return d;
}

}  // namespace dbi::hw
