// Gate-level DBI DC encoder (Table I row 1): eight independent byte
// blocks, each a popcount and a threshold — invert when the byte holds
// more than 4 zeros, i.e. fewer than 4 ones.
#include "hw/hw_design.hpp"

#include <stdexcept>

namespace dbi::hw {

using netlist::Bus;
using netlist::NetId;

HwDesign build_dbi_dc(int bytes) {
  if (bytes < 1 || bytes > 16)
    throw std::invalid_argument("build_dbi_dc: bytes out of range");

  HwDesign d;
  d.name = "DBI DC";
  d.pipeline = netlist::PipelineSpec{1, 0, 0.6};
  auto& nl = d.net;

  for (int i = 0; i < bytes; ++i) {
    const Bus byte =
        netlist::make_input_bus(nl, "byte" + std::to_string(i), 8);
    d.byte_in.push_back(byte);

    // zeros > 4  <=>  ones < 4.
    const Bus ones = netlist::popcount(nl, byte);
    const NetId invert = netlist::less_than_const(nl, ones, 4);

    const NetId dbi = netlist::inv_fold(nl, invert);
    nl.mark_output(dbi, "dbi" + std::to_string(i));
    d.dbi_out.push_back(dbi);

    const Bus out = netlist::xor_with(nl, byte, invert);
    netlist::mark_output_bus(nl, out, "data" + std::to_string(i));
    d.data_out.push_back(out);
  }
  return d;
}

}  // namespace dbi::hw
