#include "hw/synthesis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "hw/hw_encoder.hpp"
#include "netlist/report.hpp"
#include "netlist/tech.hpp"

namespace dbi::hw {

namespace {

Table1Row synthesize_design(HwDesign design, int alpha, int beta,
                            const workload::BurstTrace& trace,
                            std::int64_t max_bursts, double target_rate_hz) {
  const netlist::TechnologyModel tech =
      netlist::TechnologyModel::generic_32nm();

  HwEncoder encoder(std::move(design), alpha, beta);
  const dbi::BusState boundary =
      dbi::BusState::all_ones(trace.config());
  const auto n = std::min<std::int64_t>(
      max_bursts, static_cast<std::int64_t>(trace.size()));
  for (std::int64_t i = 0; i < n; ++i)
    (void)encoder.encode(trace[static_cast<std::size_t>(i)], boundary);

  const netlist::SynthesisReport report = netlist::synthesize(
      std::string(encoder.name()), encoder.design().net, tech,
      encoder.simulator(), encoder.design().pipeline);

  // The paper reports every design at the burst rate it runs at: the
  // channel's 1.5 GHz where timing closes, the design's own fmax where
  // it does not (the 3-bit row is measured at 0.5 GHz).
  const double operating = std::min(report.fmax_hz, target_rate_hz);

  Table1Row row;
  row.scheme = report.design;
  row.cells = report.cells;
  row.area_um2 = report.area_um2;
  row.static_uw = report.static_power_w * 1e6;
  row.fmax_ghz = report.fmax_hz / 1e9;
  row.burst_rate_ghz = operating / 1e9;
  row.dynamic_uw = report.dynamic_power_at(operating) * 1e6;
  row.total_uw = report.total_power_at(operating) * 1e6;
  row.energy_per_burst_pj = report.energy_per_burst_at(operating) * 1e12;
  row.critical_path_ns = report.critical_path_s * 1e9;
  row.units_for_target = static_cast<int>(
      std::ceil(target_rate_hz / report.fmax_hz - 1e-9));
  return row;
}

}  // namespace

std::vector<Table1Row> table1_synthesis(
    const workload::BurstTrace& activity_trace,
    const Table1Options& options) {
  if (activity_trace.empty())
    throw std::invalid_argument("table1_synthesis: empty activity trace");
  if (activity_trace.config().width != 8 ||
      activity_trace.config().burst_length != options.bytes)
    throw std::invalid_argument(
        "table1_synthesis: trace geometry must match the designs");

  std::vector<Table1Row> rows;
  rows.push_back(synthesize_design(build_dbi_dc(options.bytes), 1, 1,
                                   activity_trace,
                                   options.max_activity_bursts,
                                   options.target_burst_rate_hz));
  rows.push_back(synthesize_design(build_dbi_ac(options.bytes), 1, 1,
                                   activity_trace,
                                   options.max_activity_bursts,
                                   options.target_burst_rate_hz));
  rows.push_back(synthesize_design(build_dbi_opt_fixed(options.bytes), 1, 1,
                                   activity_trace,
                                   options.max_activity_bursts,
                                   options.target_burst_rate_hz));
  rows.push_back(synthesize_design(build_dbi_opt_3bit(options.bytes),
                                   options.alpha, options.beta,
                                   activity_trace,
                                   options.max_activity_bursts,
                                   options.target_burst_rate_hz));
  return rows;
}

power::EncoderHardware to_encoder_hardware(const Table1Row& row) {
  power::EncoderHardware hw;
  hw.name = row.scheme + " (netlist)";
  hw.area_um2 = row.area_um2;
  hw.static_power_w = row.static_uw * 1e-6;
  const double measured_at_hz = row.burst_rate_ghz * 1e9;
  hw.dyn_energy_per_burst_j =
      measured_at_hz > 0.0 ? row.dynamic_uw * 1e-6 / measured_at_hz : 0.0;
  hw.max_burst_rate_hz = row.fmax_ghz * 1e9;
  return hw;
}

}  // namespace dbi::hw
