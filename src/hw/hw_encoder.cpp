#include "hw/hw_encoder.hpp"

#include <stdexcept>

namespace dbi::hw {

HwEncoder::HwEncoder(HwDesign design, int alpha, int beta)
    : design_(std::move(design)), alpha_(alpha), beta_(beta) {
  if (design_.alpha_in.empty()) {
    if (alpha != 1 || beta != 1)
      throw std::invalid_argument(
          "HwEncoder: fixed-coefficient design requires alpha == beta == 1");
  } else {
    const int limit = 1 << static_cast<int>(design_.alpha_in.size());
    if (alpha < 0 || beta < 0 || alpha >= limit || beta >= limit)
      throw std::invalid_argument(
          "HwEncoder: coefficient does not fit the coefficient port");
  }
  sim_ = std::make_unique<netlist::Simulator>(design_.net);
}

std::string_view HwEncoder::name() const { return design_.name; }

dbi::EncodedBurst HwEncoder::encode(const dbi::Burst& data,
                                    const dbi::BusState& prev) const {
  const dbi::BusConfig& cfg = data.config();
  if (cfg.width != 8 ||
      cfg.burst_length != static_cast<int>(design_.byte_in.size()))
    throw std::invalid_argument("HwEncoder: burst geometry mismatch");
  if (!(prev == dbi::BusState::all_ones(cfg)))
    throw std::invalid_argument(
        "HwEncoder: the netlist hard-wires the all-ones bus boundary");

  for (int i = 0; i < cfg.burst_length; ++i)
    sim_->set_input_bus(design_.byte_in[static_cast<std::size_t>(i)],
                        data.word(i));
  if (!design_.alpha_in.empty()) {
    sim_->set_input_bus(design_.alpha_in,
                        static_cast<std::uint64_t>(alpha_));
    sim_->set_input_bus(design_.beta_in, static_cast<std::uint64_t>(beta_));
  }
  sim_->eval();
  sim_->accumulate();

  std::uint64_t mask = 0;
  for (int i = 0; i < cfg.burst_length; ++i)
    if (!sim_->value(design_.dbi_out[static_cast<std::size_t>(i)]))
      mask |= std::uint64_t{1} << i;

  dbi::EncodedBurst encoded = dbi::EncodedBurst::from_inversion_mask(data,
                                                                     mask);
  // Cross-check the datapath's inverted bytes against the mask-derived
  // beats — any disagreement is a netlist bug, fail loudly.
  for (int i = 0; i < cfg.burst_length; ++i) {
    const auto out =
        sim_->bus(design_.data_out[static_cast<std::size_t>(i)]);
    if (out != encoded.beat(i).dq)
      throw std::logic_error("HwEncoder: datapath/DBI mask mismatch");
  }
  return encoded;
}

}  // namespace dbi::hw
