// Gate-level DBI OPT encoder — the hardware architecture of Fig. 5.
//
// One processing block per byte. Block i receives the running path
// metrics cost(i) ("bytes 0..i-1 transmitted, last one non-inverted")
// and cost_inv(i) (last one inverted), computes the four edge costs
//
//   ac0 = alpha * x          x = popcount(Byte(i-1) ^ Byte(i))
//   ac1 = alpha * (9 - x)    (DBI wire toggles too)
//   dc0 = beta  * (8 - y)    y = popcount(Byte(i))
//   dc1 = beta  * (y + 1)    (+1: the DBI wire adds a zero)
//
// forms the four candidate path costs, and two compare-select units
// produce the next metrics plus the decision bits m0/m1. After the
// last block a final comparator picks the cheaper end node and a mux
// chain backtracks the decisions into the per-byte DBI pattern —
// Dijkstra's predecessor walk in combinational logic.
//
// Boundary handling is the paper's: Byte(-1) = 0xFF, cost(0) = 0,
// cost_inv(0) = "infinity" (a constant large enough never to win but
// small enough that block 0's adders cannot wrap).
#include "hw/hw_design.hpp"

#include <bit>
#include <stdexcept>
#include <string>

namespace dbi::hw {

using netlist::Bus;
using netlist::Netlist;
using netlist::NetId;

namespace {

/// a + b truncated to `width` bits (caller guarantees no overflow).
Bus add_trunc(Netlist& nl, const Bus& a, const Bus& b, int width) {
  Bus sum = netlist::ripple_add(nl, a, b);
  if (sum.size() > static_cast<std::size_t>(width))
    sum.resize(static_cast<std::size_t>(width));
  return netlist::zero_extend(nl, std::move(sum), width);
}

struct OptConfig {
  bool configurable = false;  ///< 3-bit coefficient inputs + multipliers
  int metric_bits = 9;        ///< path metric width
  int max_edge = 18;          ///< largest possible edge weight
};

HwDesign build_opt(int bytes, const OptConfig& cfg, std::string name) {
  if (bytes < 1 || bytes > 16)
    throw std::invalid_argument("build_opt: bytes out of range");

  HwDesign d;
  d.name = std::move(name);
  d.pipeline = netlist::PipelineSpec{8, 0, 0.6};
  auto& nl = d.net;

  if (cfg.configurable) {
    d.alpha_in = netlist::make_input_bus(nl, "alpha", 3);
    d.beta_in = netlist::make_input_bus(nl, "beta", 3);
  }
  for (int i = 0; i < bytes; ++i)
    d.byte_in.push_back(
        netlist::make_input_bus(nl, "byte" + std::to_string(i), 8));

  const int w = cfg.metric_bits;
  // "Infinity": loses every comparison yet block 0 cannot overflow.
  const std::uint64_t inf = (std::uint64_t{1} << w) - 1 -
                            static_cast<std::uint64_t>(cfg.max_edge);

  Bus cost = netlist::make_const_bus(nl, 0, w);
  Bus cost_inv = netlist::make_const_bus(nl, inf, w);
  Bus prev_byte = netlist::make_const_bus(nl, 0xFF, 8);  // Byte(-1)
  Bus m0;  // m0[i]: predecessor of beat i when beat i is non-inverted
  Bus m1;  // m1[i]: predecessor of beat i when beat i is inverted

  for (int i = 0; i < bytes; ++i) {
    const Bus& byte = d.byte_in[static_cast<std::size_t>(i)];

    // Edge costs (top of Fig. 5).
    const Bus x = netlist::popcount(
        nl, netlist::xor_bus(nl, prev_byte, byte));        // transitions
    const Bus y = netlist::popcount(nl, byte);             // ones
    Bus ac0_raw = x;                                       // x
    Bus ac1_raw = netlist::const_minus(nl, 9, x, 4);       // 9 - x
    Bus dc0_raw = netlist::const_minus(nl, 8, y, 4);       // 8 - y
    Bus dc1_raw = netlist::add_const(nl, y, 1);            // y + 1
    dc1_raw.resize(4);

    Bus ac0, ac1, dc0, dc1;
    if (cfg.configurable) {
      ac0 = netlist::multiply(nl, ac0_raw, d.alpha_in);
      ac1 = netlist::multiply(nl, ac1_raw, d.alpha_in);
      dc0 = netlist::multiply(nl, dc0_raw, d.beta_in);
      dc1 = netlist::multiply(nl, dc1_raw, d.beta_in);
    } else {
      ac0 = ac0_raw;
      ac1 = ac1_raw;
      dc0 = dc0_raw;
      dc1 = dc1_raw;
    }

    // Four candidate path costs (middle of Fig. 5, top to bottom):
    //   same inversion state as predecessor -> ac0, changed -> ac1.
    const Bus cand_keep_keep =
        add_trunc(nl, add_trunc(nl, ac0, dc0, w), cost, w);
    const Bus cand_inv_keep =
        add_trunc(nl, add_trunc(nl, ac1, dc0, w), cost_inv, w);
    const Bus cand_keep_inv =
        add_trunc(nl, add_trunc(nl, ac1, dc1, w), cost, w);
    const Bus cand_inv_inv =
        add_trunc(nl, add_trunc(nl, ac0, dc1, w), cost_inv, w);

    // Compare-select units. Strict less-than: on a tie the path through
    // the non-inverted predecessor wins (same rule as core/trellis).
    const NetId sel0 = netlist::less_than(nl, cand_inv_keep, cand_keep_keep);
    const NetId sel1 = netlist::less_than(nl, cand_inv_inv, cand_keep_inv);
    cost = netlist::mux_bus(nl, cand_keep_keep, cand_inv_keep, sel0);
    cost_inv = netlist::mux_bus(nl, cand_keep_inv, cand_inv_inv, sel1);
    m0.push_back(sel0);
    m1.push_back(sel1);

    prev_byte = byte;
  }

  // End-node comparator, then the backtracking mux chain (bottom of
  // Fig. 5): invert(last) = cheaper end node; invert(i-1) follows the
  // stored decision of block i on the chosen path.
  Bus invert(static_cast<std::size_t>(bytes), netlist::kNoNet);
  invert[static_cast<std::size_t>(bytes - 1)] =
      netlist::less_than(nl, cost_inv, cost);
  for (int i = bytes - 1; i > 0; --i)
    invert[static_cast<std::size_t>(i - 1)] = netlist::mux_fold(
        nl, m0[static_cast<std::size_t>(i)], m1[static_cast<std::size_t>(i)],
        invert[static_cast<std::size_t>(i)]);

  for (int i = 0; i < bytes; ++i) {
    const NetId dbi =
        netlist::inv_fold(nl, invert[static_cast<std::size_t>(i)]);
    nl.mark_output(dbi, "dbi" + std::to_string(i));
    d.dbi_out.push_back(dbi);
    const Bus out = netlist::xor_with(nl, d.byte_in[static_cast<std::size_t>(i)],
                                      invert[static_cast<std::size_t>(i)]);
    netlist::mark_output_bus(nl, out, "data" + std::to_string(i));
    d.data_out.push_back(out);
  }
  return d;
}

}  // namespace

HwDesign build_dbi_opt_fixed(int bytes) {
  // alpha = beta = 1: edge weight <= 18 per byte, path <= 18 * bytes.
  OptConfig cfg;
  cfg.configurable = false;
  cfg.max_edge = 18;
  cfg.metric_bits = std::bit_width(
      static_cast<unsigned>(18 * bytes + 2 * cfg.max_edge));
  return build_opt(bytes, cfg, "DBI OPT (Fixed Coeff.)");
}

HwDesign build_dbi_opt_3bit(int bytes) {
  // Coefficients <= 7: edge weight <= 7*9 + 7*9 = 126 per byte.
  OptConfig cfg;
  cfg.configurable = true;
  cfg.max_edge = 126;
  cfg.metric_bits = std::bit_width(
      static_cast<unsigned>(126 * bytes + 2 * cfg.max_edge));
  return build_opt(bytes, cfg, "DBI OPT (3-Bit Coeff.)");
}

}  // namespace dbi::hw
