#include "lake/sweep.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "sim/experiments.hpp"
#include "sim/table.hpp"
#include "trace/trace_reader.hpp"

namespace dbi::lake {

namespace fs = std::filesystem;

namespace {

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

/// Appends `"escaped"` (GCC 12's -Wrestrict misfires on the
/// `literal + std::string&&` operator+ chains at -O2, so every quoted
/// field goes through sequential appends instead).
void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  out += json_escape(s);
  out += '"';
}

/// Cell-cache file name: <arm>__<member> with path separators
/// flattened, ".json" appended.
[[nodiscard]] std::string cell_file_name(const std::string& arm,
                                         const std::string& member) {
  std::string out = arm + "__" + member;
  for (char& c : out)
    if (c == '/' || c == '\\') c = '_';
  return out + ".json";
}

[[nodiscard]] std::string compute_cell(const LakeReader& lake,
                                       std::size_t member_index,
                                       const SweepArm& arm,
                                       const SweepOptions& opt) {
  const LakeMember& m = lake.members()[member_index];
  std::string out = "{\"arm\":";
  append_quoted(out, arm.label);
  out += ",\"member\":";
  append_quoted(out, m.name);
  out += ",\"geometry\":";
  append_quoted(out, m.geometry().to_string());
  if (m.encoded()) {
    out += ",\"skipped\":\"encoded member (replay re-encodes payload "
           "traces; decode it first)\"}";
    return out;
  }

  const trace::TraceReader reader =
      trace::TraceReader::open(lake.member_path(member_index),
                               opt.verify_crc);
  dbi::SessionSpec spec;
  spec.policy = arm.policy;
  spec.geometry = m.geometry();
  spec.lanes = opt.lanes;
  spec.threads = opt.threads;
  spec.weights = arm.weights;
  spec.state_policy = opt.state_policy;
  dbi::Session session(spec);
  const auto source = dbi::make_trace_source(reader);
  const dbi::StreamStats totals = session.run(*source);
  const sim::ReplaySummary s = sim::summarize_replay(totals, opt.pod);

  out += ",\"policy\":";
  append_quoted(out, arm.policy.describe());
  out += ",\"bursts\":" + std::to_string(totals.bursts);
  out += ",\"zeros\":" + std::to_string(totals.zeros);
  out += ",\"transitions\":" + std::to_string(totals.transitions);
  out += ",\"zeros_per_burst\":" + sim::fmt(s.zeros, 6);
  out += ",\"transitions_per_burst\":" + sim::fmt(s.transitions, 6);
  if (opt.pod)
    out += ",\"interface_pj_per_burst\":" + sim::fmt(s.interface_pj, 6);
  if (arm.policy.adaptive())
    out += ",\"selection\":" + session.report().selection.to_json();
  out += "}";
  return out;
}

/// Computes the cell, going through the per-cell resume cache when one
/// is configured: an existing cell file is reused verbatim, a fresh
/// result is persisted (tmp + rename, so interrupted writes never
/// resume as corrupt cells).
[[nodiscard]] std::string cell_json(const LakeReader& lake,
                                    std::size_t member_index,
                                    const SweepArm& arm,
                                    const SweepOptions& opt) {
  const bool cached = !opt.cells_dir.empty();
  const std::string path =
      cached ? opt.cells_dir + "/" +
                   cell_file_name(arm.label,
                                  lake.members()[member_index].name)
             : std::string();
  if (cached) {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
        text.pop_back();
      if (!text.empty()) return text;
    }
  }
  std::string text = compute_cell(lake, member_index, arm, opt);
  if (cached) {
    const std::string tmp = path + ".tmp";
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      if (!os) throw LakeError("lake: cannot write sweep cell " + tmp);
      os << text << '\n';
      os.flush();
      if (!os) throw LakeError("lake: write failed for sweep cell " + tmp);
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
      throw LakeError("lake: cannot place sweep cell " + path + " (" +
                      ec.message() + ")");
  }
  return text;
}

}  // namespace

std::string run_sweep(const LakeReader& lake, const SweepOptions& options) {
  if (options.arms.empty())
    throw std::invalid_argument("lake sweep: at least one policy arm");
  std::unordered_set<std::string> labels;
  for (const SweepArm& arm : options.arms) {
    if (arm.label.empty())
      throw std::invalid_argument("lake sweep: empty arm label");
    if (!labels.insert(arm.label).second)
      throw std::invalid_argument("lake sweep: duplicate arm label " +
                                  arm.label);
  }
  if (!options.cells_dir.empty()) {
    std::error_code ec;
    fs::create_directories(options.cells_dir, ec);
    if (ec)
      throw LakeError("lake: cannot create cells directory " +
                      options.cells_dir + " (" + ec.message() + ")");
  }

  std::string out = "{\"schema\":\"dbi-lake-sweep-v1\"";
  out += ",\"lake\":{\"members\":" + std::to_string(lake.members().size());
  out += ",\"total_bursts\":" + std::to_string(lake.total_bursts());
  out += ",\"total_file_bytes\":" + std::to_string(lake.total_file_bytes());
  out += "}";
  out += ",\"members\":[";
  for (std::size_t i = 0; i < lake.members().size(); ++i) {
    const LakeMember& m = lake.members()[i];
    if (i) out += ",";
    out += "\n{\"name\":";
    append_quoted(out, m.name);
    out += ",\"geometry\":";
    append_quoted(out, m.geometry().to_string());
    out += ",\"version\":" + std::to_string(m.trace_version);
    out += ",\"encoded\":";
    out += m.encoded() ? "true" : "false";
    out += ",\"bursts\":" + std::to_string(m.stats.bursts);
    out += ",\"chunks\":" + std::to_string(m.chunk_count);
    out += ",\"file_bytes\":" + std::to_string(m.file_bytes);
    out += "}";
  }
  out += "]";
  out += ",\"arms\":[";
  for (std::size_t a = 0; a < options.arms.size(); ++a) {
    if (a) out += ",";
    append_quoted(out, options.arms[a].label);
  }
  out += "]";
  out += ",\"cells\":[";
  bool first = true;
  for (const SweepArm& arm : options.arms) {
    for (std::size_t i = 0; i < lake.members().size(); ++i) {
      if (!first) out += ",";
      first = false;
      out += '\n';
      out += cell_json(lake, i, arm, options);
    }
  }
  out += "]}\n";
  return out;
}

}  // namespace dbi::lake
