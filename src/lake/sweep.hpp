// run_sweep: the scenario-matrix campaign runner over a trace lake.
//
// A sweep evaluates a matrix of policy arms (fixed schemes and/or
// adaptive --select policies) x lake members (each at its own
// geometry), streaming every cell out of the lake through a Session
// and emitting one consolidated JSON report: per-cell StreamStats
// totals, per-burst means, interface energy (when a PodParams is
// given) and the adaptive selection report. Output is deterministic —
// no timestamps, no throughput, fixed-precision numbers — so two runs
// over the same lake are byte-identical (the CI determinism gate).
//
// Resumable per cell: with `cells_dir` set, every finished cell's JSON
// is persisted as its own file and reused verbatim on the next run,
// so an interrupted hours-scale campaign restarts where it stopped.
#pragma once

#include <string>
#include <vector>

#include "api/session.hpp"
#include "lake/lake.hpp"
#include "power/pod_params.hpp"

namespace dbi::lake {

/// One row of the sweep matrix: a scheme policy under a label (the
/// cell key — keep it filesystem-safe; slugs like "ac" or
/// "select-exact").
struct SweepArm {
  std::string label;
  dbi::SchemePolicy policy;
  dbi::CostWeights weights{};  ///< parameterises kOpt / adaptive cost
};

struct SweepOptions {
  std::vector<SweepArm> arms;
  int lanes = 1;
  int threads = 0;  ///< per-cell session threads
  dbi::StatePolicy state_policy = dbi::StatePolicy::kThread;
  bool verify_crc = true;
  /// Non-null: report interface energy per burst for every cell.
  const power::PodParams* pod = nullptr;
  /// Non-empty: per-cell resume directory (created if missing).
  std::string cells_dir;
};

/// Runs the full arms x members matrix and returns the consolidated
/// JSON report. Encoded members become deterministic "skipped" cells
/// (replay re-encodes payload traces). Throws LakeError / session
/// errors on real failures.
[[nodiscard]] std::string run_sweep(const LakeReader& lake,
                                    const SweepOptions& options);

}  // namespace dbi::lake
