// Trace lake: a directory of v2/v3 binary trace files plus a
// versioned, CRC-guarded catalog (`catalog.dbil`) indexing every
// member's geometry, scheme, burst count and byte extent — the
// collection-level generalization of TraceReader's validated chunk
// index, and the substrate for out-of-core multi-file replay.
//
// catalog.dbil layout (all integers little-endian):
//
//   Header (32 bytes)
//     0   u8[4]  magic "DBIL"
//     4   u8     version (1)
//     5   u8     endianness tag (1 = little endian)
//     6   u16    reserved (zero)
//     8   u32    member_count
//     12  u32    reserved (zero)
//     16  i64    total_bursts      (sum over members)
//     24  u64    total_file_bytes  (sum over members)
//
//   Member record (repeated member_count times; 64 bytes + name)
//     0   u16    name_bytes       (1..1024; path relative to the lake
//                                  directory, '/'-separated, no "..")
//     2   u8     trace_version    (2, or 3 for mixed-scheme traces)
//     3   u8     dbi_groups       (trace header byte 16; 0 = narrow)
//     4   u16    width
//     6   u16    burst_length
//     8   u16    file_flags       (trace header flags)
//     10  u8     enc_scheme       (trace header byte 17)
//     11  u8     reserved (zero)
//     12  u32    chunk_count
//     16  u64    file_bytes       (member's exact on-disk size)
//     24  u32    file_crc32       (member's stored footer CRC-32)
//     28  u32    reserved (zero)
//     32  i64    bursts
//     40  i64    payload_zeros
//     48  i64    raw_transitions
//     56  i64    first_burst      (cumulative burst offset in catalog
//                                  order; must be contiguous — the
//                                  collection-level extent check)
//     64  u8[name_bytes] name     (not NUL-terminated)
//
//   Footer (16 bytes)
//     0   u8[4]  magic "LIBF"
//     4   u32    reserved (zero)
//     8   u32    crc32 of file bytes [0, footer_offset + 8)
//     12  u8[4]  end magic "LIBD"
//
// LakeReader applies the TraceReader hardening discipline up front:
// magic/version checks, an allocation clamp on member_count, full
// per-member field validation (geometry, flags, scheme rules, name
// safety), contiguous first_burst extents, header-vs-member total
// agreement, and whole-catalog CRC. open() additionally detects STALE
// catalogs: every member is stat'ed (exact size match) and its stored
// footer CRC re-read and compared against the catalog record — a
// member rewritten, truncated or replaced since `dbitool lake add`
// fails loudly instead of replaying wrong bytes. verify_members()
// goes deeper still (full TraceReader::open per member, whole-file
// CRC + chunk-index walk) and backs `dbitool lake verify`.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/geometry.hpp"
#include "workload/trace.hpp"

namespace dbi::lake {

/// Every malformed-catalog / stale-member condition surfaces as a
/// LakeError (mirrors trace::TraceError: messages, never UB).
class LakeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint8_t kLakeMagic[4] = {'D', 'B', 'I', 'L'};
inline constexpr std::uint8_t kLakeFooterMagic[4] = {'L', 'I', 'B', 'F'};
inline constexpr std::uint8_t kLakeEndMagic[4] = {'L', 'I', 'B', 'D'};
inline constexpr std::uint8_t kLakeVersion = 1;

inline constexpr std::size_t kLakeHeaderBytes = 32;
inline constexpr std::size_t kLakeMemberBytes = 64;  ///< fixed part
inline constexpr std::size_t kLakeFooterBytes = 16;
inline constexpr std::size_t kLakeMaxNameBytes = 1024;

/// The catalog's file name inside the lake directory.
inline constexpr const char* kCatalogName = "catalog.dbil";

/// One catalog entry: everything the lake knows about a member trace
/// without opening it.
struct LakeMember {
  std::string name;  ///< path relative to the lake directory
  std::uint8_t trace_version = 0;
  std::uint8_t groups = 0;  ///< trace header byte 16; 0 = narrow
  std::uint16_t width = 0;
  std::uint16_t burst_length = 0;
  std::uint16_t flags = 0;
  std::uint8_t enc_scheme = 0;
  std::uint32_t chunk_count = 0;
  std::uint64_t file_bytes = 0;
  std::uint32_t crc = 0;  ///< member's stored footer CRC-32
  workload::TraceStats stats;
  std::int64_t first_burst = 0;  ///< cumulative offset in catalog order

  [[nodiscard]] bool wide() const { return groups > 1; }
  [[nodiscard]] bool encoded() const;
  [[nodiscard]] bool mixed() const;

  /// The member's bus shape in the Session API vocabulary.
  [[nodiscard]] dbi::Geometry geometry() const {
    return wide() ? dbi::Geometry::wide(width, burst_length)
                  : dbi::Geometry::narrow(width, burst_length);
  }
};

struct LakeOptions {
  /// Verify the catalog's own CRC-32 during parse.
  bool verify_crc = true;
  /// Stale detection: stat every member (exact size) and re-read its
  /// stored footer CRC, comparing both against the catalog record.
  bool check_members = true;
};

class LakeReader {
 public:
  /// Opens `dir`/catalog.dbil, validates it fully and (by default)
  /// checks every member for staleness. Throws LakeError.
  [[nodiscard]] static LakeReader open(const std::string& dir,
                                       const LakeOptions& options = {});

  /// Parses a catalog image with no backing directory (fuzzing /
  /// tests). Member staleness cannot be checked.
  [[nodiscard]] static LakeReader from_bytes(std::vector<std::uint8_t> image,
                                             bool verify_crc = true);

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] const std::vector<LakeMember>& members() const {
    return members_;
  }
  [[nodiscard]] std::int64_t total_bursts() const { return total_bursts_; }
  [[nodiscard]] std::uint64_t total_file_bytes() const {
    return total_file_bytes_;
  }

  /// Absolute (dir-joined) path of member `i`.
  [[nodiscard]] std::string member_path(std::size_t i) const;

  /// Deep verification: re-opens every member through TraceReader
  /// (whole-file CRC, chunk-index walk). Throws LakeError naming the
  /// first bad member. Requires a directory-backed reader.
  void verify_members() const;

 private:
  LakeReader() = default;
  void parse(std::vector<std::uint8_t> image, bool verify_crc);
  void check_members() const;

  std::string dir_;  ///< empty for from_bytes readers
  std::vector<LakeMember> members_;
  std::int64_t total_bursts_ = 0;
  std::uint64_t total_file_bytes_ = 0;
};

/// Builds / extends a catalog. add() deep-validates each member file
/// (full TraceReader::open) before recording it, so a catalog this
/// writer produced only ever indexes traces that parsed clean.
/// write() is atomic: catalog.dbil.tmp, then rename.
class LakeWriter {
 public:
  /// Starts an empty catalog for `dir` (created if missing).
  [[nodiscard]] static LakeWriter create(const std::string& dir);

  /// Loads `dir`'s existing catalog (members unchecked — add() / the
  /// final write() do not require the old members to be readable).
  [[nodiscard]] static LakeWriter append(const std::string& dir);

  /// Validates `dir`/`rel_name` as a trace (full TraceReader parse +
  /// CRC) and appends its record. Throws LakeError on a bad trace, an
  /// unsafe name, or a duplicate. Returns the new record.
  const LakeMember& add(const std::string& rel_name);

  /// Serializes the catalog to `dir`/catalog.dbil (tmp + rename).
  void write() const;

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] const std::vector<LakeMember>& members() const {
    return members_;
  }

 private:
  explicit LakeWriter(std::string dir) : dir_(std::move(dir)) {}

  std::string dir_;
  std::vector<LakeMember> members_;
};

/// Rejects absolute paths, "..", backslashes, NUL and empty segments.
/// Throws LakeError; returns `name` unchanged otherwise.
const std::string& validate_member_name(const std::string& name);

}  // namespace dbi::lake
