#include "lake/lake.hpp"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <limits>
#include <span>
#include <stdexcept>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "trace/format.hpp"
#include "trace/probe.hpp"
#include "trace/trace_reader.hpp"

namespace dbi::lake {

namespace fs = std::filesystem;

namespace {

// Any member burst count at or above this is catalog corruption: even
// at one payload byte per burst and the 128x RLE expansion bound it
// would imply a member file beyond every real filesystem, and keeping
// bursts < 2^50 makes every derived product (payload_bits at up to
// 4096 bits per burst, running totals) overflow-free.
constexpr std::int64_t kMaxMemberBursts = std::int64_t{1} << 50;
constexpr std::uint64_t kMaxMemberFileBytes = std::uint64_t{1} << 56;

[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw LakeError("lake: cannot open " + path);
  std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  if (in.bad()) throw LakeError("lake: read failed for " + path);
  return data;
}

[[nodiscard]] std::string join(const std::string& dir,
                               const std::string& name) {
  return dir.empty() ? name : dir + "/" + name;
}

[[nodiscard]] std::string catalog_path(const std::string& dir) {
  return join(dir, kCatalogName);
}

}  // namespace

bool LakeMember::encoded() const {
  return (flags & trace::kFileFlagEncoded) != 0;
}

bool LakeMember::mixed() const {
  return encoded() && enc_scheme == trace::kEncSchemeMixed;
}

const std::string& validate_member_name(const std::string& name) {
  if (name.empty() || name.size() > kLakeMaxNameBytes)
    throw LakeError("lake: member name empty or longer than " +
                    std::to_string(kLakeMaxNameBytes) + " bytes");
  if (name.front() == '/')
    throw LakeError("lake: member name must be relative: " + name);
  std::size_t seg_start = 0;
  for (std::size_t i = 0; i <= name.size(); ++i) {
    if (i < name.size()) {
      const char c = name[i];
      if (c == '\0' || c == '\\')
        throw LakeError("lake: member name contains a NUL or backslash");
      if (c != '/') continue;
    }
    const std::string_view seg(name.data() + seg_start, i - seg_start);
    if (seg.empty() || seg == "." || seg == "..")
      throw LakeError(
          "lake: member name has an empty, '.' or '..' path segment: " +
          name);
    seg_start = i + 1;
  }
  return name;
}

// ------------------------------------------------------------ LakeReader

LakeReader LakeReader::open(const std::string& dir,
                            const LakeOptions& options) {
  if (dir.empty()) throw LakeError("lake: empty lake directory path");
  LakeReader r;
  r.dir_ = dir;
  r.parse(read_file(catalog_path(dir)), options.verify_crc);
  if (options.check_members) r.check_members();
  return r;
}

LakeReader LakeReader::from_bytes(std::vector<std::uint8_t> image,
                                  bool verify_crc) {
  LakeReader r;
  r.parse(std::move(image), verify_crc);
  return r;
}

void LakeReader::parse(std::vector<std::uint8_t> image, bool verify_crc) {
  // ByteReader overruns throw TraceError; rebrand everything from this
  // parse as LakeError so callers (and the fuzz contract) see one type.
  try {
    const std::span<const std::uint8_t> file(image);
    if (file.size() < kLakeHeaderBytes + kLakeFooterBytes)
      throw LakeError("lake: catalog too small (" +
                      std::to_string(file.size()) +
                      " bytes) for a header + footer");

    // Header.
    trace::ByteReader hdr(file, "lake catalog");
    hdr.expect_magic(kLakeMagic, "catalog");
    const auto version = static_cast<std::uint8_t>(hdr.le(1));
    if (version != kLakeVersion)
      throw LakeError("lake: unsupported catalog version " +
                      std::to_string(version));
    const auto endianness = static_cast<std::uint8_t>(hdr.le(1));
    if (endianness != trace::kLittleEndianTag)
      throw LakeError("lake: unsupported endianness tag " +
                      std::to_string(endianness));
    (void)hdr.le(2);  // reserved
    const auto member_count = static_cast<std::uint32_t>(hdr.le(4));
    (void)hdr.le(4);  // reserved
    total_bursts_ = static_cast<std::int64_t>(hdr.le(8));
    total_file_bytes_ = hdr.le(8);
    if (total_bursts_ < 0)
      throw LakeError("lake: negative total burst count in catalog header");

    // Footer + CRC.
    const std::size_t footer_off = file.size() - kLakeFooterBytes;
    trace::ByteReader ftr(file.subspan(footer_off), "lake catalog footer");
    ftr.expect_magic(kLakeFooterMagic, "footer");
    (void)ftr.le(4);  // reserved
    const auto stored_crc = static_cast<std::uint32_t>(ftr.le(4));
    ftr.expect_magic(kLakeEndMagic, "end");
    if (verify_crc &&
        trace::crc32(file.first(footer_off + 8)) != stored_crc)
      throw LakeError(
          "lake: catalog CRC mismatch (file corrupted or truncated)");

    // Member records. Clamp the reserve: with verify_crc off, a
    // corrupted count must not drive a huge allocation before the
    // record walk catches it.
    const std::size_t body = footer_off - kLakeHeaderBytes;
    if (member_count > body / kLakeMemberBytes)
      throw LakeError("lake: catalog member count " +
                      std::to_string(member_count) +
                      " exceeds what the file can hold");
    members_.reserve(member_count);
    trace::ByteReader cur(file.first(footer_off), "lake catalog members");
    (void)cur.bytes(kLakeHeaderBytes);
    std::int64_t bursts_seen = 0;
    std::uint64_t bytes_seen = 0;
    std::unordered_set<std::string> names;
    for (std::uint32_t i = 0; i < member_count; ++i) {
      LakeMember m;
      const auto name_bytes = static_cast<std::uint16_t>(cur.le(2));
      m.trace_version = static_cast<std::uint8_t>(cur.le(1));
      m.groups = static_cast<std::uint8_t>(cur.le(1));
      m.width = static_cast<std::uint16_t>(cur.le(2));
      m.burst_length = static_cast<std::uint16_t>(cur.le(2));
      m.flags = static_cast<std::uint16_t>(cur.le(2));
      m.enc_scheme = static_cast<std::uint8_t>(cur.le(1));
      (void)cur.le(1);  // reserved
      m.chunk_count = static_cast<std::uint32_t>(cur.le(4));
      m.file_bytes = cur.le(8);
      m.crc = static_cast<std::uint32_t>(cur.le(4));
      (void)cur.le(4);  // reserved
      m.stats.bursts = static_cast<std::int64_t>(cur.le(8));
      m.stats.payload_zeros = static_cast<std::int64_t>(cur.le(8));
      m.stats.raw_transitions = static_cast<std::int64_t>(cur.le(8));
      m.first_burst = static_cast<std::int64_t>(cur.le(8));
      const auto name_span = cur.bytes(name_bytes);
      m.name.assign(reinterpret_cast<const char*>(name_span.data()),
                    name_span.size());
      const std::string where = "member " + std::to_string(i);

      if (name_bytes < 1)
        throw LakeError("lake: " + where + " has an empty name");
      validate_member_name(m.name);
      if (!names.insert(m.name).second)
        throw LakeError("lake: duplicate member name " + m.name);

      if (m.trace_version != trace::kFormatVersion &&
          m.trace_version != trace::kFormatVersionMixed)
        throw LakeError("lake: " + where + " has unsupported trace version " +
                        std::to_string(m.trace_version));
      if ((m.flags &
           ~(trace::kFileFlagCompressed | trace::kFileFlagEncoded)) != 0)
        throw LakeError("lake: " + where + " carries unknown flag bits");
      // The trace header's encode-scheme rules, verbatim.
      if (!m.encoded() && m.enc_scheme != 0)
        throw LakeError("lake: " + where +
                        " records an encode scheme without the encoded flag");
      if (m.trace_version == trace::kFormatVersionMixed) {
        if (!m.encoded() || m.enc_scheme != trace::kEncSchemeMixed)
          throw LakeError("lake: " + where +
                          " is version 3 but not a mixed-scheme encoded "
                          "trace (enc_scheme = 0xFF)");
      } else if (m.enc_scheme > 7) {
        throw LakeError("lake: " + where + " encode scheme tag " +
                        std::to_string(m.enc_scheme) + " out of range");
      }
      try {
        if (m.groups == 0) {
          dbi::BusConfig{m.width, m.burst_length}.validate();
        } else {
          const dbi::WideBusConfig wide{m.width, m.burst_length};
          wide.validate();
          if (static_cast<int>(m.groups) != wide.groups())
            throw std::invalid_argument(
                "dbi_groups byte " + std::to_string(m.groups) +
                " does not match width " + std::to_string(wide.width));
        }
      } catch (const std::invalid_argument& e) {
        throw LakeError("lake: " + where + " has bad geometry: " + e.what());
      }
      if (m.stats.bursts < 0 || m.stats.payload_zeros < 0 ||
          m.stats.raw_transitions < 0)
        throw LakeError("lake: " + where + " has negative counters");
      if (m.stats.bursts >= kMaxMemberBursts ||
          m.file_bytes >= kMaxMemberFileBytes)
        throw LakeError("lake: " + where + " has an implausible size");
      if (m.file_bytes < trace::kHeaderBytes + trace::kFooterBytes)
        throw LakeError("lake: " + where + " byte extent " +
                        std::to_string(m.file_bytes) +
                        " is smaller than a trace header + footer");
      if (m.chunk_count >
          (m.file_bytes - trace::kHeaderBytes - trace::kFooterBytes) /
              trace::kChunkHeaderBytes)
        throw LakeError("lake: " + where + " chunk count " +
                        std::to_string(m.chunk_count) +
                        " exceeds what its byte extent can hold");
      // The collection-level extent check: members cover the global
      // burst axis contiguously, in catalog order.
      if (m.first_burst != bursts_seen)
        throw LakeError("lake: " + where + " first_burst " +
                        std::to_string(m.first_burst) +
                        " breaks the contiguous burst extent (expected " +
                        std::to_string(bursts_seen) + ")");
      if (bursts_seen >
          std::numeric_limits<std::int64_t>::max() - m.stats.bursts)
        throw LakeError("lake: total burst count overflows");
      bursts_seen += m.stats.bursts;
      if (bytes_seen >
          std::numeric_limits<std::uint64_t>::max() - m.file_bytes)
        throw LakeError("lake: total byte count overflows");
      bytes_seen += m.file_bytes;
      m.stats.payload_bits = m.stats.bursts *
                             static_cast<std::int64_t>(m.width) *
                             static_cast<std::int64_t>(m.burst_length);
      members_.push_back(std::move(m));
    }
    if (cur.remaining() != 0)
      throw LakeError("lake: trailing bytes after the last member record");
    if (bursts_seen != total_bursts_)
      throw LakeError("lake: header total bursts " +
                      std::to_string(total_bursts_) + " != members' sum " +
                      std::to_string(bursts_seen));
    if (bytes_seen != total_file_bytes_)
      throw LakeError("lake: header total file bytes " +
                      std::to_string(total_file_bytes_) + " != members' sum " +
                      std::to_string(bytes_seen));
  } catch (const trace::TraceError& e) {
    throw LakeError(std::string("lake: bad catalog: ") + e.what());
  }
}

std::string LakeReader::member_path(std::size_t i) const {
  if (dir_.empty())
    throw LakeError("lake: catalog has no backing directory");
  return join(dir_, members_.at(i).name);
}

void LakeReader::check_members() const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const LakeMember& m = members_[i];
    const std::string path = member_path(i);
    const std::string stale =
        "lake: stale catalog: member " + m.name + " ";
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(path, ec);
    if (ec)
      throw LakeError(stale + "cannot be read (" + ec.message() + ")");
    if (size != m.file_bytes)
      throw LakeError(stale + "is " + std::to_string(size) +
                      " bytes on disk, catalog says " +
                      std::to_string(m.file_bytes) +
                      " (re-run dbitool lake add)");
    std::ifstream in(path, std::ios::binary);
    std::array<std::uint8_t, trace::kFooterBytes> fbuf{};
    in.seekg(static_cast<std::streamoff>(size - trace::kFooterBytes),
             std::ios::beg);
    in.read(reinterpret_cast<char*>(fbuf.data()),
            static_cast<std::streamsize>(fbuf.size()));
    if (!in) throw LakeError(stale + "footer cannot be read");
    std::uint32_t crc = 0;
    for (int b = 0; b < 4; ++b)
      crc |= static_cast<std::uint32_t>(fbuf[56 + b]) << (8 * b);
    const bool magics_ok =
        std::equal(fbuf.begin(), fbuf.begin() + 4, trace::kFooterMagic) &&
        std::equal(fbuf.begin() + 60, fbuf.end(), trace::kEndMagic);
    if (!magics_ok || crc != m.crc)
      throw LakeError(stale +
                      "changed on disk since the catalog was written "
                      "(footer CRC mismatch; re-run dbitool lake add)");
  }
}

void LakeReader::verify_members() const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const LakeMember& m = members_[i];
    trace::TraceReader reader = [&] {
      try {
        return trace::TraceReader::open(member_path(i), /*verify_crc=*/true);
      } catch (const trace::TraceError& e) {
        throw LakeError("lake: member " + m.name +
                        " failed verification: " + e.what());
      }
    }();
    // The deep pass also cross-checks the catalog record against what
    // the member actually parses as.
    const trace::TraceHeader& h = reader.header();
    const bool record_matches =
        h.version == m.trace_version && h.groups == m.groups &&
        h.cfg.width == static_cast<int>(m.width) &&
        h.cfg.burst_length == static_cast<int>(m.burst_length) &&
        h.flags == m.flags && h.enc_scheme == m.enc_scheme &&
        reader.chunk_count() == m.chunk_count &&
        reader.file_bytes() == m.file_bytes &&
        reader.stats().bursts == m.stats.bursts &&
        reader.stats().payload_zeros == m.stats.payload_zeros &&
        reader.stats().raw_transitions == m.stats.raw_transitions;
    if (!record_matches)
      throw LakeError("lake: member " + m.name +
                      " no longer matches its catalog record "
                      "(re-run dbitool lake add)");
  }
}

// ------------------------------------------------------------ LakeWriter

LakeWriter LakeWriter::create(const std::string& dir) {
  if (dir.empty()) throw LakeError("lake: empty lake directory path");
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec)
    throw LakeError("lake: cannot create directory " + dir + " (" +
                    ec.message() + ")");
  return LakeWriter(dir);
}

LakeWriter LakeWriter::append(const std::string& dir) {
  const LakeReader existing = LakeReader::open(
      dir, LakeOptions{.verify_crc = true, .check_members = false});
  LakeWriter w(dir);
  w.members_ = existing.members();
  return w;
}

const LakeMember& LakeWriter::add(const std::string& rel_name) {
  validate_member_name(rel_name);
  for (const LakeMember& m : members_)
    if (m.name == rel_name)
      throw LakeError("lake: member " + rel_name +
                      " is already in the catalog");
  const std::string path = join(dir_, rel_name);
  try {
    const trace::TraceFileProbe probe = trace::probe_trace_file(path);
    // A catalog this writer produced only ever indexes traces that
    // parsed clean end to end — chunk index, mask pairing, CRC.
    (void)trace::TraceReader::open(path, /*verify_crc=*/true);
    LakeMember m;
    m.name = rel_name;
    m.trace_version = probe.header.version;
    m.groups = probe.header.groups;
    m.width = static_cast<std::uint16_t>(probe.header.cfg.width);
    m.burst_length = static_cast<std::uint16_t>(probe.header.cfg.burst_length);
    m.flags = probe.header.flags;
    m.enc_scheme = probe.header.enc_scheme;
    m.chunk_count = static_cast<std::uint32_t>(probe.chunk_count);
    m.file_bytes = probe.file_bytes;
    m.crc = probe.crc;
    m.stats = probe.stats;
    m.stats.payload_bits = m.stats.bursts *
                           static_cast<std::int64_t>(m.width) *
                           static_cast<std::int64_t>(m.burst_length);
    m.first_burst = members_.empty() ? 0
                                     : members_.back().first_burst +
                                           members_.back().stats.bursts;
    members_.push_back(std::move(m));
    return members_.back();
  } catch (const trace::TraceError& e) {
    throw LakeError("lake: cannot add " + rel_name + ": " + e.what());
  }
}

void LakeWriter::write() const {
  using trace::put_le;
  // push_back (not range-insert) for the 4-byte magics: GCC 12's
  // -Wstringop-overflow misfires on inserting a constexpr array into a
  // small vector at -O2.
  const auto put_magic = [](std::vector<std::uint8_t>& v,
                            const std::uint8_t (&magic)[4]) {
    for (const std::uint8_t b : magic) v.push_back(b);
  };
  std::vector<std::uint8_t> out;
  put_magic(out, kLakeMagic);
  put_le(out, kLakeVersion, 1);
  put_le(out, trace::kLittleEndianTag, 1);
  put_le(out, 0, 2);
  put_le(out, members_.size(), 4);
  put_le(out, 0, 4);
  std::int64_t total_bursts = 0;
  std::uint64_t total_bytes = 0;
  for (const LakeMember& m : members_) {
    total_bursts += m.stats.bursts;
    total_bytes += m.file_bytes;
  }
  put_le(out, static_cast<std::uint64_t>(total_bursts), 8);
  put_le(out, total_bytes, 8);
  for (const LakeMember& m : members_) {
    put_le(out, m.name.size(), 2);
    put_le(out, m.trace_version, 1);
    put_le(out, m.groups, 1);
    put_le(out, m.width, 2);
    put_le(out, m.burst_length, 2);
    put_le(out, m.flags, 2);
    put_le(out, m.enc_scheme, 1);
    put_le(out, 0, 1);
    put_le(out, m.chunk_count, 4);
    put_le(out, m.file_bytes, 8);
    put_le(out, m.crc, 4);
    put_le(out, 0, 4);
    put_le(out, static_cast<std::uint64_t>(m.stats.bursts), 8);
    put_le(out, static_cast<std::uint64_t>(m.stats.payload_zeros), 8);
    put_le(out, static_cast<std::uint64_t>(m.stats.raw_transitions), 8);
    put_le(out, static_cast<std::uint64_t>(m.first_burst), 8);
    out.insert(out.end(), m.name.begin(), m.name.end());
  }
  put_magic(out, kLakeFooterMagic);
  put_le(out, 0, 4);
  put_le(out, trace::crc32(out), 4);
  put_magic(out, kLakeEndMagic);

  const std::string final_path = catalog_path(dir_);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
    if (!os) throw LakeError("lake: cannot write " + tmp_path);
    os.write(reinterpret_cast<const char*>(out.data()),
             static_cast<std::streamsize>(out.size()));
    os.flush();
    if (!os) throw LakeError("lake: write failed for " + tmp_path);
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec)
    throw LakeError("lake: cannot replace " + final_path + " (" +
                    ec.message() + ")");
}

}  // namespace dbi::lake
