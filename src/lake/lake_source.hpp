// make_lake_source: a Session Source replaying every member of a
// trace lake as one concatenated stream.
//
// Members are served in catalog order, each through its own
// TraceReader with the zero-copy chunk views the single-file trace
// source uses; every member's first chunk carries
// SourceChunk::first_of_stream, so the session restores the all-ones
// line state and restarts the lane interleave at each member boundary
// — the concatenated run's StreamStats totals (and per-burst masks)
// are bit-exact against replaying each member file on its own, merged
// in catalog order.
//
// Readahead pipelining: while member N's chunks are being encoded, a
// background task opens member N+1 (the CRC verification pass pages
// the whole file in; with verify_crc off, the task touches one byte
// per page instead), so the encode loop never stalls on cold file
// I/O. The mmap + POSIX_MADV_SEQUENTIAL advice of MappedFile applies
// per member as before.
#pragma once

#include <memory>

#include "api/source.hpp"
#include "lake/lake.hpp"

namespace dbi::lake {

struct LakeSourceOptions {
  /// Open (and page in) member N+1 on a background thread while member
  /// N encodes.
  bool readahead = true;
  /// Full whole-file CRC pass when opening each member. Off, the
  /// catalog's per-member stale check (LakeReader::open) is the only
  /// integrity guard.
  bool verify_crc = true;
};

/// Source over `lake`'s members whose geometry matches the session's
/// bind() geometry (a mixed-geometry lake replays per geometry; bind
/// throws std::invalid_argument, listing the available geometries,
/// when nothing matches). The reader must outlive the source.
///
/// Encoded members are served with their mask streams (a kDecode
/// session consumes them); an encode-direction session rejects them,
/// as it does for single encoded traces. The member-boundary state
/// reset applies to the fixed-scheme encode paths — adaptive policies
/// re-block across boundaries and are better run per member
/// (lake::run_sweep does).
[[nodiscard]] std::unique_ptr<dbi::Source> make_lake_source(
    const LakeReader& lake, const LakeSourceOptions& options = {});

}  // namespace dbi::lake
