// replay_lake: out-of-core replay of every member of a trace lake,
// sequentially or sharded whole-files-across-workers, with a
// deterministic merge.
//
// Each member is an independent stream: its session starts from fresh
// all-ones line state at the member's own geometry, so the per-member
// StreamStats (and per-burst masks) are bit-exact against replaying
// that file alone — and the merged totals, accumulated in catalog
// order regardless of worker completion order, are identical at 1 and
// N workers.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "api/session.hpp"
#include "api/stream_stats.hpp"
#include "lake/lake.hpp"

namespace dbi::lake {

struct LakeReplayOptions {
  /// Files-across-workers parallelism: N >= 2 replays members on N
  /// threads (each member's session forced single-threaded); 0 / 1
  /// replays sequentially with readahead.
  int workers = 1;
  /// Sequential replay: open (and page in) member N+1 on a background
  /// thread while member N encodes. Ignored with workers >= 2 (the
  /// worker pool overlaps I/O and encode by itself).
  bool readahead = true;
  /// Whole-file CRC pass when opening each member.
  bool verify_crc = true;
  /// Non-null: called with every chunk's per-(burst, group) results.
  /// `first_burst` is member-local. Calls for one member arrive in
  /// stream order; with workers >= 2 different members' calls
  /// interleave from worker threads — the callback must synchronise.
  std::function<void(std::size_t member, std::int64_t first_burst,
                     std::span<const engine::BurstResult> results)>
      on_results;
};

struct LakeReplayResult {
  dbi::StreamStats totals;  ///< merged in catalog order (deterministic)
  /// Per replayed member, catalog order.
  std::vector<dbi::StreamStats> member_stats;
};

/// Replays every member through `spec` (geometry overridden per member
/// to the member's own; everything else — scheme/policy, lanes, state
/// policy, weights, kernel — applies as given). Encoded members throw
/// LakeError: replay re-encodes payload traces; decode them first.
/// Errors are reported for the first failing member in catalog order.
[[nodiscard]] LakeReplayResult replay_lake(
    const LakeReader& lake, const dbi::SessionSpec& spec,
    const LakeReplayOptions& options = {});

}  // namespace dbi::lake
