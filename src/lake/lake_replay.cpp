#include "lake/lake_replay.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <future>
#include <memory>
#include <thread>
#include <utility>

#include "trace/trace_reader.hpp"

namespace dbi::lake {

namespace {

[[nodiscard]] std::unique_ptr<trace::TraceReader> open_member(
    const LakeReader& lake, std::size_t idx, bool verify_crc) {
  const LakeMember& m = lake.members()[idx];
  auto reader = std::make_unique<trace::TraceReader>(
      trace::TraceReader::open(lake.member_path(idx), verify_crc));
  const dbi::Geometry got =
      reader->wide() ? dbi::Geometry::of(reader->header().wide_config())
                     : dbi::Geometry::of(reader->config());
  if (got != m.geometry() || reader->bursts() != m.stats.bursts)
    throw LakeError("lake: member " + m.name +
                    " no longer matches its catalog record "
                    "(re-run dbitool lake add)");
  return reader;
}

}  // namespace

LakeReplayResult replay_lake(const LakeReader& lake,
                             const dbi::SessionSpec& spec,
                             const LakeReplayOptions& options) {
  const std::vector<LakeMember>& members = lake.members();
  for (const LakeMember& m : members)
    if (m.encoded())
      throw LakeError("lake: member " + m.name +
                      " is an encoded trace; replay re-encodes payload "
                      "traces (decode it first)");

  const std::size_t n = members.size();
  LakeReplayResult result;
  result.member_stats.resize(n);
  std::vector<std::exception_ptr> errors(n);

  const int workers =
      static_cast<int>(std::min<std::size_t>(
          std::max(options.workers, 1), std::max<std::size_t>(n, 1)));

  auto run_member = [&](std::size_t k,
                        std::unique_ptr<trace::TraceReader> reader) {
    dbi::SessionSpec s = spec;
    s.geometry = members[k].geometry();
    if (workers > 1) {
      // One member per worker thread: the session itself must not fan
      // out again (nor share a caller pool across workers).
      s.threads = 0;
      s.pool = nullptr;
    }
    dbi::Session session(s);
    const auto source = dbi::make_trace_source(*reader);
    if (options.on_results) {
      const auto sink = dbi::make_observer_sink(
          [&options, k](std::int64_t first_burst,
                        std::span<const engine::BurstResult> results) {
            options.on_results(k, first_burst, results);
          });
      result.member_stats[k] = session.run(*source, *sink);
    } else {
      result.member_stats[k] = session.run(*source);
    }
  };

  if (workers <= 1) {
    // Sequential with readahead: member k+1 opens (CRC pass pages it
    // in) on a background thread while member k encodes.
    std::future<std::unique_ptr<trace::TraceReader>> pending;
    for (std::size_t k = 0; k < n; ++k) {
      try {
        std::unique_ptr<trace::TraceReader> reader =
            pending.valid() ? pending.get()
                            : open_member(lake, k, options.verify_crc);
        if (options.readahead && k + 1 < n)
          pending = std::async(std::launch::async, [&lake, &options, k] {
            return open_member(lake, k + 1, options.verify_crc);
          });
        run_member(k, std::move(reader));
      } catch (...) {
        errors[k] = std::current_exception();
        break;  // a failed member (or its prefetch) ends the run
      }
    }
    if (pending.valid()) pending.wait();
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
      pool.emplace_back([&] {
        for (std::size_t k = next.fetch_add(1); k < n;
             k = next.fetch_add(1)) {
          try {
            run_member(k, open_member(lake, k, options.verify_crc));
          } catch (...) {
            errors[k] = std::current_exception();
          }
        }
      });
    for (std::thread& t : pool) t.join();
  }

  // First failure in catalog order, so the reported error is
  // deterministic regardless of worker scheduling.
  for (std::size_t k = 0; k < n; ++k)
    if (errors[k]) std::rethrow_exception(errors[k]);

  for (std::size_t k = 0; k < n; ++k) result.totals += result.member_stats[k];
  return result;
}

}  // namespace dbi::lake
