#include "lake/lake_source.hpp"

#include <future>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace_reader.hpp"

namespace dbi::lake {

namespace {

[[nodiscard]] dbi::Geometry reader_geometry(const trace::TraceReader& r) {
  return r.wide() ? dbi::Geometry::of(r.header().wide_config())
                  : dbi::Geometry::of(r.config());
}

/// Pages a freshly opened member in when no CRC pass did: one byte per
/// page of every chunk payload (uncompressed chunks are views straight
/// into the mapping, so this walks the file itself).
void touch_pages(const trace::TraceReader& r) {
  constexpr std::size_t kPage = 4096;
  std::vector<std::uint8_t> scratch;
  std::uint8_t acc = 0;
  for (std::size_t c = 0; c < r.chunk_count(); ++c) {
    const auto payload = r.chunk_payload(c, scratch);
    for (std::size_t off = 0; off < payload.size(); off += kPage)
      acc ^= payload[off];
  }
  volatile std::uint8_t sink = acc;
  (void)sink;
}

class LakeSource final : public dbi::Source {
 public:
  LakeSource(const LakeReader& lake, const LakeSourceOptions& options)
      : lake_(lake), opt_(options) {}

  ~LakeSource() override {
    // Join any in-flight prefetch before the members it touches go away.
    if (pending_.valid()) pending_.wait();
  }

  void bind(const dbi::Geometry& g) override {
    if (pending_.valid()) pending_.wait();
    pending_ = {};
    selected_.clear();
    for (std::size_t i = 0; i < lake_.members().size(); ++i)
      if (lake_.members()[i].geometry() == g) selected_.push_back(i);
    if (selected_.empty()) {
      std::string available;
      for (const LakeMember& m : lake_.members()) {
        const std::string s = m.geometry().to_string();
        if (available.find(s) == std::string::npos)
          available += (available.empty() ? "" : ", ") + s;
      }
      throw std::invalid_argument(
          "lake source: no member matches session geometry " + g.to_string() +
          (available.empty() ? " (the lake is empty)"
                             : " (lake geometries: " + available + ")"));
    }
    pos_ = 0;
    next_chunk_ = 0;
    reader_ = open_member(selected_[0], /*prefetching=*/false);
    spawn_prefetch();
  }

  std::optional<dbi::SourceChunk> next() override {
    while (reader_) {
      if (next_chunk_ < reader_->chunk_count()) {
        const trace::ChunkInfo& info = reader_->chunk(next_chunk_);
        dbi::SourceChunk chunk{reader_->chunk_payload(next_chunk_, scratch_),
                               static_cast<std::int64_t>(info.burst_count),
                               {}};
        if (reader_->encoded())
          chunk.masks =
              reader_->chunk_masks(next_chunk_, mask_scratch_, mask_words_);
        chunk.first_of_stream = next_chunk_ == 0;
        ++next_chunk_;
        return chunk;
      }
      advance_member();
    }
    return {};
  }

 private:
  [[nodiscard]] std::unique_ptr<trace::TraceReader> open_member(
      std::size_t member_index, bool prefetching) const {
    const LakeMember& m = lake_.members()[member_index];
    auto reader = std::make_unique<trace::TraceReader>(
        trace::TraceReader::open(lake_.member_path(member_index),
                                 opt_.verify_crc));
    // Catch a member that changed after the catalog's stale check (or
    // with checking disabled) before serving its bytes as another
    // geometry's stream.
    if (reader_geometry(*reader) != m.geometry() ||
        reader->bursts() != m.stats.bursts)
      throw LakeError("lake: member " + m.name +
                      " no longer matches its catalog record "
                      "(re-run dbitool lake add)");
    if (prefetching && !opt_.verify_crc) touch_pages(*reader);
    return reader;
  }

  void spawn_prefetch() {
    if (!opt_.readahead || pos_ + 1 >= selected_.size()) return;
    const std::size_t idx = selected_[pos_ + 1];
    pending_ = std::async(std::launch::async, [this, idx] {
      return open_member(idx, /*prefetching=*/true);
    });
  }

  void advance_member() {
    ++pos_;
    next_chunk_ = 0;
    if (pos_ >= selected_.size()) {
      reader_.reset();
      return;
    }
    if (pending_.valid()) {
      reader_ = pending_.get();  // rethrows a failed prefetch open here
    } else {
      reader_ = open_member(selected_[pos_], /*prefetching=*/false);
    }
    spawn_prefetch();
  }

  const LakeReader& lake_;
  const LakeSourceOptions opt_;
  std::vector<std::size_t> selected_;  // member indices at the bound geometry
  std::size_t pos_ = 0;
  std::unique_ptr<trace::TraceReader> reader_;  // current member
  std::size_t next_chunk_ = 0;
  std::future<std::unique_ptr<trace::TraceReader>> pending_;
  std::vector<std::uint8_t> scratch_;
  std::vector<std::uint8_t> mask_scratch_;
  std::vector<std::uint64_t> mask_words_;
};

}  // namespace

std::unique_ptr<dbi::Source> make_lake_source(
    const LakeReader& lake, const LakeSourceOptions& options) {
  return std::make_unique<LakeSource>(lake, options);
}

}  // namespace dbi::lake
