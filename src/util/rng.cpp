#include "util/rng.hpp"

#include <bit>
#include <stdexcept>

namespace dbi::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Xoshiro256::next_double() {
  // 53 top bits -> [0,1) with full double resolution.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("next_below: bound == 0");
  // Plain modulo: the bias is < bound / 2^64, irrelevant for workload
  // generation, and keeps the generator branch-free and portable.
  return next() % bound;
}

bool Xoshiro256::next_bool(double p) { return next_double() < p; }

std::uint32_t Xoshiro256::next_biased_bits(int bits, double p_one) {
  std::uint32_t w = 0;
  for (int i = 0; i < bits; ++i)
    if (next_bool(p_one)) w |= std::uint32_t{1} << i;
  return w;
}

}  // namespace dbi::util
