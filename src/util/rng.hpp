// Deterministic pseudo-random number generation for workloads.
//
// xoshiro256** (Blackman & Vigna) seeded through splitmix64 — fast,
// high quality, and fully reproducible across platforms, so every
// experiment in the repository is re-runnable bit-for-bit.
#pragma once

#include <array>
#include <cstdint>

namespace dbi::util {

/// splitmix64 step; used to expand a single seed into a full state.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed);

  /// Next 64 uniformly distributed bits.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound) (bound > 0; rejection-free Lemire).
  std::uint64_t next_below(std::uint64_t bound);

  /// Bernoulli draw with probability p of true.
  bool next_bool(double p);

  /// Word with each of the `bits` low bits set with probability p_one.
  std::uint32_t next_biased_bits(int bits, double p_one);

  // UniformRandomBitGenerator interface (usable with <random> adaptors).
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace dbi::util
