// Shortest-path (Viterbi) solver for optimal DBI encoding.
//
// The paper's key insight (Section III, Figs. 2 and 6): choosing the
// minimum-energy inversion pattern for a burst is a shortest-path
// problem on a trellis with two nodes per beat — "transmitted
// non-inverted" (state 0) and "transmitted inverted" (state 1). The
// weight of the edge from state p of beat i-1 to state s of beat i is
//
//   beta  * ( zeros(x_s) + s )                        // DC part
// + alpha * ( hamming(x_p(i-1), x_s) + (dbi_s != dbi_p) )  // AC part
//
// where x_s = s ? ~w_i : w_i and dbi_s = !s. The DP keeps two path
// metrics per beat — exactly the cost(i) / cost_inv(i) signals of the
// hardware architecture in Fig. 5 — and backtracks the decision bits to
// recover the optimal inversion mask.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/burst.hpp"
#include "core/cost.hpp"
#include "core/types.hpp"

namespace dbi {

/// Full DP state of one solved burst. Exposed (rather than just the
/// mask) so tests and the gate-level model can check every intermediate
/// path metric against the hardware datapath.
template <typename CostT>
struct TrellisResult {
  /// bit i set => transmit beat i inverted (DBI = 0).
  std::uint64_t invert_mask = 0;
  /// Total cost of the optimal encoding (== shortest path length).
  CostT cost{};
  /// node_costs[i][s]: minimum cost of transmitting beats 0..i with
  /// beat i in state s. node_costs[i][0] corresponds to the hardware
  /// signal cost(i+1), node_costs[i][1] to cost_inv(i+1) (Fig. 5).
  std::vector<std::array<CostT, 2>> node_costs;
  /// pred[i][s]: state of beat i-1 on the cheapest path into (i, s);
  /// these are the m0/m1 decision bits stored by each processing block.
  /// pred[0][*] is always 0 (the single start node).
  std::vector<std::array<std::uint8_t, 2>> pred;
};

/// Ties are broken exactly like the hardware comparators of Fig. 5:
/// on equal path metrics the non-inverted predecessor (state 0) wins,
/// and on equal end-node metrics the non-inverted end state wins.
[[nodiscard]] TrellisResult<double> solve_trellis(const Burst& data,
                                                  const BusState& prev,
                                                  const CostWeights& w);

/// Integer-coefficient variant: the datapath of the synthesised encoder
/// (alpha = beta = 1 for DBI OPT (Fixed), 3-bit coefficients for the
/// configurable design).
[[nodiscard]] TrellisResult<std::int64_t> solve_trellis(
    const Burst& data, const BusState& prev, const IntCostWeights& w);

/// Per-beat edge-cost quartet of the hardware architecture (Fig. 5),
/// exposed for unit tests and the netlist equivalence checks:
///   ac0 = alpha * popcount(w_prev ^ w_cur)   (DBI unchanged)
///   ac1 = alpha * (lines - popcount(..))     (DBI toggled)
///   dc0 = beta * zeros(w_cur)                (non-inverted)
///   dc1 = beta * (ones(w_cur) + 1)           (inverted, +1 = DBI zero)
struct EdgeCosts {
  std::int64_t ac0 = 0, ac1 = 0, dc0 = 0, dc1 = 0;
};
[[nodiscard]] EdgeCosts edge_costs(Word prev_noninv_word, Word cur_word,
                                   const BusConfig& cfg,
                                   const IntCostWeights& w);

}  // namespace dbi
