// RAW transmission: no DBI wire, data sent as-is. The baseline every
// figure of the paper normalises against.
#include "core/encoder.hpp"

namespace dbi {
namespace {

class RawEncoder final : public Encoder {
 public:
  [[nodiscard]] std::string_view name() const override { return "RAW"; }

  [[nodiscard]] EncodedBurst encode(const Burst& data,
                                    const BusState& /*prev*/) const override {
    std::vector<Beat> beats;
    beats.reserve(static_cast<std::size_t>(data.length()));
    for (int i = 0; i < data.length(); ++i)
      beats.push_back(Beat{data.word(i), true});
    return EncodedBurst(data.config(), std::move(beats),
                        /*uses_dbi_line=*/false);
  }
};

}  // namespace

std::unique_ptr<Encoder> make_raw_encoder() {
  return std::make_unique<RawEncoder>();
}

}  // namespace dbi
