// Pareto frontier of (zeros, transitions) over all inversion patterns
// of one burst. Reproduces the Fig. 2 observation that beyond the DBI
// DC and DBI AC endpoints there exist balanced encodings neither scheme
// can find — exactly the points DBI OPT selects as alpha/beta varies.
#pragma once

#include <cstdint>
#include <vector>

#include "core/burst.hpp"
#include "core/types.hpp"

namespace dbi {

struct ParetoPoint {
  int zeros = 0;
  int transitions = 0;
  std::uint64_t invert_mask = 0;  ///< one representative pattern

  friend constexpr bool operator==(const ParetoPoint&, const ParetoPoint&) =
      default;
};

/// All non-dominated (zeros, transitions) pairs of `data` transmitted
/// after `prev`, sorted by ascending zeros (thus descending
/// transitions). Exhaustive over 2^burst_length patterns; refuses
/// bursts longer than 20 beats.
[[nodiscard]] std::vector<ParetoPoint> pareto_frontier(const Burst& data,
                                                       const BusState& prev);

/// True when some frontier point strictly dominates (z, t) — used by
/// tests to show DC/AC picks can be off-frontier... (they never are;
/// they are endpoints) and that OPT picks always lie on the frontier.
[[nodiscard]] bool on_frontier(const std::vector<ParetoPoint>& frontier,
                               int zeros, int transitions);

}  // namespace dbi
