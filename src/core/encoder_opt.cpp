// DBI OPT: the paper's contribution. Finds the minimum-energy inversion
// pattern of a whole burst by solving the trellis shortest-path problem
// (Section III). Three variants:
//   * OptEncoder       — real-valued coefficients (alpha, beta)
//   * OptIntEncoder    — integer coefficients (the 3-bit hardware design)
//   * DBI OPT (Fixed)  — OptIntEncoder with alpha = beta = 1 (Fig. 5
//                        datapath without multipliers)
#include <string>

#include "core/encoder.hpp"
#include "core/trellis.hpp"

namespace dbi {
namespace {

class OptEncoder final : public Encoder {
 public:
  explicit OptEncoder(const CostWeights& w) : w_(w) { w_.validate(); }

  [[nodiscard]] std::string_view name() const override { return "DBI OPT"; }

  [[nodiscard]] EncodedBurst encode(const Burst& data,
                                    const BusState& prev) const override {
    const TrellisResult<double> r = solve_trellis(data, prev, w_);
    return EncodedBurst::from_inversion_mask(data, r.invert_mask);
  }

 private:
  CostWeights w_;
};

class OptIntEncoder final : public Encoder {
 public:
  OptIntEncoder(const IntCostWeights& w, std::string name)
      : w_(w), name_(std::move(name)) {
    w_.validate();
  }

  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] EncodedBurst encode(const Burst& data,
                                    const BusState& prev) const override {
    const TrellisResult<std::int64_t> r = solve_trellis(data, prev, w_);
    return EncodedBurst::from_inversion_mask(data, r.invert_mask);
  }

 private:
  IntCostWeights w_;
  std::string name_;
};

}  // namespace

std::unique_ptr<Encoder> make_opt_encoder(const CostWeights& w) {
  return std::make_unique<OptEncoder>(w);
}

std::unique_ptr<Encoder> make_opt_fixed_encoder() {
  return std::make_unique<OptIntEncoder>(IntCostWeights{1, 1},
                                         "DBI OPT (Fixed)");
}

std::unique_ptr<Encoder> make_opt_int_encoder(const IntCostWeights& w) {
  return std::make_unique<OptIntEncoder>(
      w, "DBI OPT (int " + std::to_string(w.alpha) + "," +
             std::to_string(w.beta) + ")");
}

}  // namespace dbi
