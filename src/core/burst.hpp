// Burst: the payload of one DBI group over one burst — `burst_length`
// words of `width` bits each, before any DBI encoding is applied.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/types.hpp"

namespace dbi {

class Burst {
 public:
  /// An all-zero burst with the given geometry.
  explicit Burst(const BusConfig& cfg);

  /// A burst holding `words` (each must fit in cfg.dq_mask()).
  /// Throws std::invalid_argument on size or range violations.
  Burst(const BusConfig& cfg, std::span<const Word> words);

  /// Convenience: burst from raw bytes for the default 8-bit-lane layout.
  /// `bytes.size()` must equal cfg.burst_length and cfg.width must be 8.
  [[nodiscard]] static Burst from_bytes(const BusConfig& cfg,
                                        std::span<const std::uint8_t> bytes);

  /// Parses beats written as binary strings, MSB first, e.g.
  /// {"10001110", ...} — the format used in Fig. 2 of the paper.
  [[nodiscard]] static Burst from_bit_strings(
      const BusConfig& cfg, std::span<const std::string_view> beats);

  [[nodiscard]] const BusConfig& config() const { return cfg_; }
  [[nodiscard]] int length() const { return cfg_.burst_length; }

  /// Payload word of beat `i` (bounds-checked).
  [[nodiscard]] Word word(int i) const;
  void set_word(int i, Word value);

  [[nodiscard]] std::span<const Word> words() const { return words_; }

  /// Zeros over all payload words (no DBI line — raw data property).
  [[nodiscard]] int payload_zeros() const;

  friend bool operator==(const Burst&, const Burst&) = default;

 private:
  BusConfig cfg_;
  std::vector<Word> words_;
};

}  // namespace dbi
