// Small constexpr bit helpers shared by every encoder.
#pragma once

#include <bit>
#include <cstdint>

#include "core/types.hpp"

namespace dbi {

/// Number of set bits in `w` restricted to the `width` low lines.
[[nodiscard]] constexpr int count_ones(Word w, const BusConfig& cfg) {
  return std::popcount(w & cfg.dq_mask());
}

/// Number of zero bits among the `width` low lines of `w`.
[[nodiscard]] constexpr int count_zeros(Word w, const BusConfig& cfg) {
  return cfg.width - count_ones(w, cfg);
}

/// Bitwise inversion restricted to the DQ lines of the group.
[[nodiscard]] constexpr Word invert(Word w, const BusConfig& cfg) {
  return ~w & cfg.dq_mask();
}

/// Hamming distance between two words over the DQ lines of the group.
[[nodiscard]] constexpr int hamming(Word a, Word b, const BusConfig& cfg) {
  return std::popcount((a ^ b) & cfg.dq_mask());
}

/// Transitions caused by driving beat `now` after beat `prev`
/// (DQ lines and the DBI line).
[[nodiscard]] constexpr int beat_transitions(const Beat& prev, const Beat& now,
                                             const BusConfig& cfg) {
  return hamming(prev.dq, now.dq, cfg) + (prev.dbi != now.dbi ? 1 : 0);
}

/// Zeros driven by beat `b` (DQ lines and the DBI line).
[[nodiscard]] constexpr int beat_zeros(const Beat& b, const BusConfig& cfg) {
  return count_zeros(b.dq, cfg) + (b.dbi ? 0 : 1);
}

}  // namespace dbi
