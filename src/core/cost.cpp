#include "core/cost.hpp"

#include <algorithm>
#include <cmath>

namespace dbi {

IntCostWeights quantize_weights(const CostWeights& w, int bits) {
  w.validate();
  if (bits < 1 || bits > 16)
    throw std::invalid_argument("quantize_weights: bits must be in [1,16]");
  const int max_coeff = (1 << bits) - 1;
  const double largest = std::max(w.alpha, w.beta);
  if (largest <= 0.0) return IntCostWeights{0, 0};
  // Scale so the larger coefficient uses the full integer range, then
  // round; keep at least 1 for any strictly positive coefficient so a
  // nonzero cost never silently becomes free.
  const double scale = max_coeff / largest;
  auto q = [&](double v) {
    if (v <= 0.0) return 0;
    return std::max(1, static_cast<int>(std::lround(v * scale)));
  };
  return IntCostWeights{q(w.alpha), q(w.beta)};
}

}  // namespace dbi
