// EncodedBurst: the physical signal produced by a DBI encoder, plus the
// zero/transition metrics the interface energy model consumes (Eq. 4 of
// the paper: E_burst = n_zeros * E_zero + n_transitions * E_transition).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/burst.hpp"
#include "core/types.hpp"

namespace dbi {

/// Zero / transition counts of one encoded burst over all lines of the
/// group (DQ lines + DBI line for encoded schemes; DQ only for RAW).
struct BurstStats {
  int zeros = 0;        ///< n_zeros of Eq. (4)
  int transitions = 0;  ///< n_transitions of Eq. (4)

  friend constexpr bool operator==(const BurstStats&, const BurstStats&) =
      default;
  constexpr BurstStats& operator+=(const BurstStats& o) {
    zeros += o.zeros;
    transitions += o.transitions;
    return *this;
  }
  friend constexpr BurstStats operator+(BurstStats a, const BurstStats& b) {
    return a += b;
  }
};

/// A DBI-encoded burst: one Beat (DQ values + DBI value) per beat.
///
/// `uses_dbi_line()` distinguishes encoded bursts from RAW transmission:
/// RAW drives no DBI wire, so the DBI line contributes neither zeros nor
/// transitions (it idles high in every Beat for uniformity).
class EncodedBurst {
 public:
  EncodedBurst(const BusConfig& cfg, std::vector<Beat> beats,
               bool uses_dbi_line = true);

  /// Builds the encoded burst for `data` given a per-beat inversion mask
  /// (bit i of `invert_mask` set => beat i transmitted inverted, DBI=0).
  [[nodiscard]] static EncodedBurst from_inversion_mask(
      const Burst& data, std::uint64_t invert_mask);

  [[nodiscard]] const BusConfig& config() const { return cfg_; }
  [[nodiscard]] int length() const { return cfg_.burst_length; }
  [[nodiscard]] const Beat& beat(int i) const;
  [[nodiscard]] std::span<const Beat> beats() const { return beats_; }
  [[nodiscard]] bool uses_dbi_line() const { return uses_dbi_line_; }

  /// True when beat i is transmitted inverted (DBI line low).
  [[nodiscard]] bool inverted(int i) const { return !beat(i).dbi; }

  /// Inversion decisions as a bit mask (bit i == beat i inverted).
  [[nodiscard]] std::uint64_t inversion_mask() const;

  /// Zeros driven on the lines of this burst (DBI line included iff
  /// uses_dbi_line()).
  [[nodiscard]] int zeros() const;

  /// Line transitions relative to `prev`, including beat-to-beat
  /// transitions inside the burst (DBI line included iff uses_dbi_line()).
  [[nodiscard]] int transitions(const BusState& prev) const;

  [[nodiscard]] BurstStats stats(const BusState& prev) const {
    return BurstStats{zeros(), transitions(prev)};
  }

  /// Bus state after this burst (for chaining bursts on one lane).
  [[nodiscard]] BusState final_state() const;

  /// Recovers the original payload (inverts beats whose DBI bit is 0).
  [[nodiscard]] Burst decode() const;

  /// Beats as MSB-first bit strings plus the DBI bit, for debugging and
  /// the Fig. 2 example printer. Format: "10001110 dbi=1".
  [[nodiscard]] std::string to_string() const;

 private:
  BusConfig cfg_;
  std::vector<Beat> beats_;
  bool uses_dbi_line_;
};

}  // namespace dbi
