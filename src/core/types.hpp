// Core value types for DBI coding: bus configuration, physical line state
// and transmitted beats.
//
// Conventions (fixed by the worked example of Fig. 2 of the paper and
// enforced by the unit tests):
//   * A DBI group is `width` DQ lines plus one DBI line.
//   * DBI = 0 signals an inverted beat, DBI = 1 a non-inverted beat.
//   * Before a burst, every line (DQ and DBI) is assumed to transmit 1
//     unless an explicit BusState is given (paper, Section II).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dbi {

/// Payload word of one beat. Supports bus groups up to 32 DQ lines.
using Word = std::uint32_t;

/// Geometry of one DBI group.
///
/// The JEDEC configuration used throughout the paper is width = 8 DQ
/// lines per DBI line and burst_length = 8 beats, but both are
/// configurable for the burst-length / bus-width ablation experiments.
struct BusConfig {
  int width = 8;         ///< DQ lines per DBI group (1..32)
  int burst_length = 8;  ///< beats per burst (1..64)

  /// Mask with `width` low bits set; every payload word must fit in it.
  [[nodiscard]] constexpr Word dq_mask() const {
    return width >= 32 ? ~Word{0} : ((Word{1} << width) - 1U);
  }

  /// Total lines driven by an encoded beat (DQ lines + DBI line).
  [[nodiscard]] constexpr int lines() const { return width + 1; }

  /// Total line-beats of one encoded burst (used by energy models).
  [[nodiscard]] constexpr int line_beats() const {
    return lines() * burst_length;
  }

  /// Smallest whole number of bytes that holds one beat's payload word
  /// (the unit of the binary trace format and packed engine inputs).
  [[nodiscard]] constexpr int bytes_per_beat() const {
    return width <= 8 ? 1 : (width <= 16 ? 2 : 4);
  }

  /// On-disk / packed-buffer size of one burst's payload.
  [[nodiscard]] constexpr int bytes_per_burst() const {
    return bytes_per_beat() * burst_length;
  }

  /// Throws std::invalid_argument when the geometry is unusable.
  void validate() const {
    if (width < 1 || width > 32)
      throw std::invalid_argument("BusConfig: width must be in [1,32], got " +
                                  std::to_string(width));
    if (burst_length < 1 || burst_length > 64)
      throw std::invalid_argument(
          "BusConfig: burst_length must be in [1,64], got " +
          std::to_string(burst_length));
  }

  friend constexpr bool operator==(const BusConfig&, const BusConfig&) =
      default;
};

/// One transmitted beat: the physical values of the DQ lines plus the
/// DBI line. Also used as the bus history (the last transmitted beat).
struct Beat {
  Word dq = 0;      ///< physical DQ line values (bit i = line i)
  bool dbi = true;  ///< physical DBI line value (true = line high)

  friend constexpr bool operator==(const Beat&, const Beat&) = default;
};

/// Geometry of a wide bus: `width` DQ lines decomposed into byte groups
/// of at most 8 lines, each group driving its own DBI line — the JEDEC
/// x16/x32/x64 arrangement (one DBI wire per byte of the interface).
///
/// Groups slice the bus little-endian: group g covers DQ lines
/// [8g, min(8g + 8, width)), so a non-multiple-of-8 width ends in one
/// narrower remainder group. Each group is an independent BusConfig
/// code: group g of a wide bus encodes exactly like a standalone
/// {group_width(g), burst_length} group, threading its own BusState.
///
/// Packed layout (trace payloads, engine wide inputs) is beat-major:
/// one byte per group per beat, beat t at bytes
/// [t * groups(), (t + 1) * groups()), byte g carrying group g's lanes
/// (remainder-group bytes must fit the group's dq_mask). This is the
/// physical wire order of a wide device and the byte order of
/// workload::Channel::write_stream.
struct WideBusConfig {
  int width = 8;         ///< total DQ lines across all groups (1..64)
  int burst_length = 8;  ///< beats per burst (1..64)

  static constexpr int kMaxWidth = 64;

  /// Number of byte groups (== DBI lines) on the bus.
  [[nodiscard]] constexpr int groups() const { return (width + 7) / 8; }

  /// DQ lines of group g: 8 for every full group, width % 8 for a
  /// trailing remainder group.
  [[nodiscard]] constexpr int group_width(int g) const {
    return width - 8 * g >= 8 ? 8 : width - 8 * g;
  }

  /// Group g as a standalone single-group geometry.
  [[nodiscard]] constexpr BusConfig group_config(int g) const {
    return BusConfig{group_width(g), burst_length};
  }

  /// Valid-bit mask of group g's payload byte (0xFF for full groups,
  /// narrower for a trailing remainder group).
  [[nodiscard]] constexpr Word group_mask(int g) const {
    return group_config(g).dq_mask();
  }

  /// Total lines driven by an encoded beat (DQ lines + one DBI per group).
  [[nodiscard]] constexpr int lines() const { return width + groups(); }

  /// Packed-layout size of one beat (one byte per group).
  [[nodiscard]] constexpr int bytes_per_beat() const { return groups(); }

  /// Packed-layout size of one burst.
  [[nodiscard]] constexpr int bytes_per_burst() const {
    return groups() * burst_length;
  }

  /// Throws std::invalid_argument when the geometry is unusable.
  void validate() const {
    if (width < 1 || width > kMaxWidth)
      throw std::invalid_argument("WideBusConfig: width must be in [1,64], got " +
                                  std::to_string(width));
    if (burst_length < 1 || burst_length > 64)
      throw std::invalid_argument(
          "WideBusConfig: burst_length must be in [1,64], got " +
          std::to_string(burst_length));
  }

  friend constexpr bool operator==(const WideBusConfig&,
                                   const WideBusConfig&) = default;
};

/// State of the bus lines before a burst starts.
///
/// The paper assumes all lines transmitted ones prior to the evaluated
/// burst (Section II); all_ones() encodes that boundary condition.
struct BusState {
  Beat last;  ///< line values during the preceding bit time

  [[nodiscard]] static constexpr BusState all_ones(const BusConfig& cfg) {
    return BusState{Beat{cfg.dq_mask(), true}};
  }
  [[nodiscard]] static constexpr BusState all_zeros() {
    return BusState{Beat{0, false}};
  }

  friend constexpr bool operator==(const BusState&, const BusState&) = default;
};

}  // namespace dbi
