#include "core/burst.hpp"

#include <stdexcept>
#include <string>

#include "core/byte_utils.hpp"

namespace dbi {

Burst::Burst(const BusConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  words_.assign(static_cast<std::size_t>(cfg_.burst_length), Word{0});
}

Burst::Burst(const BusConfig& cfg, std::span<const Word> words) : cfg_(cfg) {
  cfg_.validate();
  if (words.size() != static_cast<std::size_t>(cfg_.burst_length))
    throw std::invalid_argument(
        "Burst: expected " + std::to_string(cfg_.burst_length) +
        " words, got " + std::to_string(words.size()));
  words_.assign(words.begin(), words.end());
  for (Word w : words_)
    if ((w & ~cfg_.dq_mask()) != 0)
      throw std::invalid_argument("Burst: word does not fit bus width");
}

Burst Burst::from_bytes(const BusConfig& cfg,
                        std::span<const std::uint8_t> bytes) {
  if (cfg.width != 8)
    throw std::invalid_argument("Burst::from_bytes requires width == 8");
  std::vector<Word> words(bytes.begin(), bytes.end());
  return Burst(cfg, words);
}

Burst Burst::from_bit_strings(const BusConfig& cfg,
                              std::span<const std::string_view> beats) {
  std::vector<Word> words;
  words.reserve(beats.size());
  for (std::string_view s : beats) {
    if (s.size() != static_cast<std::size_t>(cfg.width))
      throw std::invalid_argument("Burst::from_bit_strings: beat \"" +
                                  std::string(s) + "\" length != width");
    Word w = 0;
    for (char c : s) {
      if (c != '0' && c != '1')
        throw std::invalid_argument(
            "Burst::from_bit_strings: invalid character");
      w = (w << 1) | static_cast<Word>(c == '1');
    }
    words.push_back(w);
  }
  return Burst(cfg, words);
}

Word Burst::word(int i) const {
  return words_.at(static_cast<std::size_t>(i));
}

void Burst::set_word(int i, Word value) {
  if ((value & ~cfg_.dq_mask()) != 0)
    throw std::invalid_argument("Burst::set_word: value does not fit width");
  words_.at(static_cast<std::size_t>(i)) = value;
}

int Burst::payload_zeros() const {
  int zeros = 0;
  for (Word w : words_) zeros += count_zeros(w, cfg_);
  return zeros;
}

}  // namespace dbi
