// Noisy decision wrapper: flips each per-beat inversion decision of an
// inner encoder with probability `error_rate`.
//
// Models the analog encoder implementations the paper points to (Ihm
// et al., ISSCC 2007; paper Section II): an analog comparator
// occasionally decides wrongly, but a wrong DBI decision still
// transmits a perfectly decodable beat — it only costs energy. The
// noise study quantifies exactly how little (bench_extensions).
//
// Determinism: the wrapper carries its own seeded PRNG; a given
// (seed, call sequence) always produces the same decisions. encode()
// stays const towards callers while the PRNG advances (mutable), like
// a hardware block whose internal noise state is invisible to the bus.
#include <string>

#include "core/encoder.hpp"
#include "util/rng.hpp"

namespace dbi {
namespace {

class NoisyEncoder final : public Encoder {
 public:
  NoisyEncoder(std::unique_ptr<Encoder> inner, double error_rate,
               std::uint64_t seed)
      : inner_(std::move(inner)), error_rate_(error_rate), rng_(seed) {
    if (!inner_)
      throw std::invalid_argument("NoisyEncoder: null inner encoder");
    if (error_rate < 0.0 || error_rate > 1.0)
      throw std::invalid_argument("NoisyEncoder: error_rate not in [0,1]");
    name_ = "NOISY(" + std::string(inner_->name()) + ")";
  }

  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] EncodedBurst encode(const Burst& data,
                                    const BusState& prev) const override {
    const EncodedBurst clean = inner_->encode(data, prev);
    std::uint64_t mask = clean.inversion_mask();
    for (int i = 0; i < data.length(); ++i)
      if (rng_.next_bool(error_rate_)) mask ^= std::uint64_t{1} << i;
    return EncodedBurst::from_inversion_mask(data, mask);
  }

 private:
  std::unique_ptr<Encoder> inner_;
  double error_rate_;
  mutable util::Xoshiro256 rng_;
  std::string name_;
};

}  // namespace

std::unique_ptr<Encoder> make_noisy_encoder(std::unique_ptr<Encoder> inner,
                                            double error_rate,
                                            std::uint64_t seed) {
  return std::make_unique<NoisyEncoder>(std::move(inner), error_rate, seed);
}

}  // namespace dbi
