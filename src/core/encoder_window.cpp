// Windowed DBI OPT (ablation, not in the paper): solves the trellis
// optimally inside fixed blocks of `window` beats and commits the bus
// state between blocks. Trades optimality for encoder lookahead:
// window == burst_length reproduces DBI OPT, window == 1 degenerates to
// a beat-local greedy scheme. Quantifies how much lookahead the
// shortest-path formulation actually needs.
#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/encoder.hpp"
#include "core/trellis.hpp"

namespace dbi {
namespace {

class WindowedOptEncoder final : public Encoder {
 public:
  WindowedOptEncoder(const CostWeights& w, int window)
      : w_(w),
        window_(window),
        name_("DBI OPT (window " + std::to_string(window) + ")") {
    w_.validate();
    if (window_ < 1)
      throw std::invalid_argument("WindowedOptEncoder: window must be >= 1");
  }

  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] EncodedBurst encode(const Burst& data,
                                    const BusState& prev) const override {
    const BusConfig& cfg = data.config();
    std::uint64_t mask = 0;
    BusState state = prev;
    for (int start = 0; start < cfg.burst_length; start += window_) {
      const int len = std::min(window_, cfg.burst_length - start);
      BusConfig block_cfg = cfg;
      block_cfg.burst_length = len;
      std::vector<Word> block_words;
      block_words.reserve(static_cast<std::size_t>(len));
      for (int i = 0; i < len; ++i)
        block_words.push_back(data.word(start + i));
      const Burst block(block_cfg, block_words);
      const TrellisResult<double> r = solve_trellis(block, state, w_);
      mask |= r.invert_mask << start;
      state = EncodedBurst::from_inversion_mask(block, r.invert_mask)
                  .final_state();
    }
    return EncodedBurst::from_inversion_mask(data, mask);
  }

 private:
  CostWeights w_;
  int window_;
  std::string name_;
};

}  // namespace

std::unique_ptr<Encoder> make_windowed_opt_encoder(const CostWeights& w,
                                                   int window) {
  return std::make_unique<WindowedOptEncoder>(w, window);
}

std::unique_ptr<Encoder> make_greedy_encoder(const CostWeights& w) {
  // A one-beat window is exactly the beat-local joint greedy: the
  // trellis degenerates to comparing the two options of a single beat.
  return std::make_unique<WindowedOptEncoder>(w, 1);
}

}  // namespace dbi
