// Encoder interface and factories for every DBI scheme evaluated in the
// paper, plus the ablation variants this reproduction adds.
#pragma once

#include <memory>
#include <string_view>

#include "core/burst.hpp"
#include "core/cost.hpp"
#include "core/encoding.hpp"

namespace dbi {

/// The encoding schemes of the paper plus our ablation variants.
enum class Scheme {
  kRaw,         ///< unencoded transmission (no DBI wire)
  kDc,          ///< DBI DC: minimise zeros per beat
  kAc,          ///< DBI AC: minimise transitions per beat
  kAcDc,        ///< Hollis DBI ACDC: first beat DC, rest AC
  kOpt,         ///< DBI OPT: trellis shortest path, real coefficients
  kOptFixed,    ///< DBI OPT (Fixed): integer alpha = beta = 1 datapath
  kExhaustive,  ///< brute-force reference (2^burst_length patterns)
};

[[nodiscard]] std::string_view scheme_name(Scheme s);

/// A DBI encoder. Stateless: the caller threads the bus history
/// (last transmitted beat) through consecutive encode() calls, which is
/// what a per-lane memory channel does (see workload::Channel).
class Encoder {
 public:
  virtual ~Encoder() = default;
  Encoder(const Encoder&) = delete;
  Encoder& operator=(const Encoder&) = delete;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual EncodedBurst encode(const Burst& data,
                                            const BusState& prev) const = 0;

 protected:
  Encoder() = default;
};

[[nodiscard]] std::unique_ptr<Encoder> make_raw_encoder();
[[nodiscard]] std::unique_ptr<Encoder> make_dc_encoder();
[[nodiscard]] std::unique_ptr<Encoder> make_ac_encoder();
[[nodiscard]] std::unique_ptr<Encoder> make_acdc_encoder();
/// Optimal trellis encoder with real-valued coefficients.
[[nodiscard]] std::unique_ptr<Encoder> make_opt_encoder(const CostWeights& w);
/// The DBI OPT (Fixed) design: integer alpha = beta = 1, hardware
/// tie-breaking — bit-exact twin of the synthesised fixed-coefficient
/// datapath.
[[nodiscard]] std::unique_ptr<Encoder> make_opt_fixed_encoder();
/// Integer-coefficient trellis encoder (the 3-bit configurable design
/// uses w.alpha, w.beta in [0,7]).
[[nodiscard]] std::unique_ptr<Encoder> make_opt_int_encoder(
    const IntCostWeights& w);
/// Brute-force minimum-cost search over all 2^burst_length inversion
/// patterns. Reference implementation for optimality proofs in tests;
/// refuses bursts longer than 20 beats.
[[nodiscard]] std::unique_ptr<Encoder> make_exhaustive_encoder(
    const CostWeights& w);
/// Ablation: optimal encoding within fixed blocks of `window` beats,
/// committing state between blocks. window == burst_length reproduces
/// kOpt; window == 1 is the beat-local greedy scheme.
[[nodiscard]] std::unique_ptr<Encoder> make_windowed_opt_encoder(
    const CostWeights& w, int window);

/// Beat-local joint greedy: inverts a beat whenever that lowers
/// alpha * transitions + beta * zeros for this beat alone. Stands in
/// for the heuristic joint schemes of Chang et al. (DAC 2000), which
/// trade optimality for a memoryless decision — equivalent to
/// make_windowed_opt_encoder(w, 1).
[[nodiscard]] std::unique_ptr<Encoder> make_greedy_encoder(
    const CostWeights& w);

/// Decision-noise wrapper modelling analog encoder implementations
/// (paper Section II / Ihm et al.): every per-beat inversion decision
/// of `inner` is flipped with probability `error_rate`. Output stays
/// decodable — only the energy optimality degrades.
[[nodiscard]] std::unique_ptr<Encoder> make_noisy_encoder(
    std::unique_ptr<Encoder> inner, double error_rate, std::uint64_t seed);

/// Generic factory used by the sweep harnesses. `w` parameterises the
/// kOpt / kExhaustive schemes and is ignored by the fixed schemes.
[[nodiscard]] std::unique_ptr<Encoder> make_encoder(Scheme s,
                                                    const CostWeights& w = {});

}  // namespace dbi
