#include "core/trellis.hpp"

#include "core/byte_utils.hpp"

namespace dbi {
namespace {

// Shared DP skeleton for double / int64 cost types. CostT must be an
// arithmetic type; WeightsT provides .alpha / .beta.
template <typename CostT, typename WeightsT>
TrellisResult<CostT> solve(const Burst& data, const BusState& prev,
                           const WeightsT& w) {
  const BusConfig& cfg = data.config();
  const int n = cfg.burst_length;

  TrellisResult<CostT> r;
  r.node_costs.resize(static_cast<std::size_t>(n));
  r.pred.resize(static_cast<std::size_t>(n));

  // Transmitted word / DBI value of beat i in state s.
  auto tx_word = [&](int i, int s) -> Word {
    const Word word = data.word(i);
    return s ? invert(word, cfg) : word;
  };
  auto tx_dbi = [](int s) -> bool { return s == 0; };

  std::array<CostT, 2> cur{};
  for (int i = 0; i < n; ++i) {
    std::array<CostT, 2> next{};
    for (int s = 0; s < 2; ++s) {
      const Word xs = tx_word(i, s);
      const CostT dc = static_cast<CostT>(w.beta) *
                       static_cast<CostT>(count_zeros(xs, cfg) + s);
      if (i == 0) {
        // Single start node: the bus history is the fixed previous beat.
        const int trans = hamming(prev.last.dq, xs, cfg) +
                          (prev.last.dbi != tx_dbi(s) ? 1 : 0);
        next[static_cast<std::size_t>(s)] =
            dc + static_cast<CostT>(w.alpha) * static_cast<CostT>(trans);
        r.pred[0][static_cast<std::size_t>(s)] = 0;
        continue;
      }
      CostT best{};
      std::uint8_t best_pred = 0;
      for (int p = 0; p < 2; ++p) {
        const int trans = hamming(tx_word(i - 1, p), xs, cfg) +
                          (tx_dbi(p) != tx_dbi(s) ? 1 : 0);
        const CostT cand =
            cur[static_cast<std::size_t>(p)] + dc +
            static_cast<CostT>(w.alpha) * static_cast<CostT>(trans);
        // Strict '<' so the non-inverted predecessor (p == 0) wins ties,
        // matching the hardware compare-select units.
        if (p == 0 || cand < best) {
          best = cand;
          best_pred = static_cast<std::uint8_t>(p);
        }
      }
      next[static_cast<std::size_t>(s)] = best;
      r.pred[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)] =
          best_pred;
    }
    cur = next;
    r.node_costs[static_cast<std::size_t>(i)] = next;
  }

  // End node: the cheaper of the two final states; ties go to state 0.
  int s = (cur[1] < cur[0]) ? 1 : 0;
  r.cost = cur[static_cast<std::size_t>(s)];
  for (int i = n - 1; i >= 0; --i) {
    if (s) r.invert_mask |= std::uint64_t{1} << i;
    s = r.pred[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)];
  }
  return r;
}

}  // namespace

TrellisResult<double> solve_trellis(const Burst& data, const BusState& prev,
                                    const CostWeights& w) {
  w.validate();
  return solve<double>(data, prev, w);
}

TrellisResult<std::int64_t> solve_trellis(const Burst& data,
                                          const BusState& prev,
                                          const IntCostWeights& w) {
  w.validate();
  return solve<std::int64_t>(data, prev, w);
}

EdgeCosts edge_costs(Word prev_noninv_word, Word cur_word,
                     const BusConfig& cfg, const IntCostWeights& w) {
  const int x = hamming(prev_noninv_word, cur_word, cfg);
  const int ones = count_ones(cur_word, cfg);
  EdgeCosts e;
  e.ac0 = std::int64_t{w.alpha} * x;
  e.ac1 = std::int64_t{w.alpha} * (cfg.lines() - x);
  e.dc0 = std::int64_t{w.beta} * (cfg.width - ones);
  e.dc1 = std::int64_t{w.beta} * (ones + 1);
  return e;
}

}  // namespace dbi
