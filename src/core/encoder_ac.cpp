// DBI AC (paper, Section I): invert a beat whenever inversion reduces
// the number of line transitions relative to the previously transmitted
// beat, counting the DBI line's own toggle.
//
// With width + 1 lines the two options toggle t and (width + 1) - t
// lines, so for even widths there is never a tie; the tie rule
// (prefer non-inverted) only matters for odd bus widths.
#include "core/byte_utils.hpp"
#include "core/encoder.hpp"

namespace dbi {
namespace {

class AcEncoder final : public Encoder {
 public:
  [[nodiscard]] std::string_view name() const override { return "DBI AC"; }

  [[nodiscard]] EncodedBurst encode(const Burst& data,
                                    const BusState& prev) const override {
    const BusConfig& cfg = data.config();
    std::vector<Beat> beats;
    beats.reserve(static_cast<std::size_t>(data.length()));
    Beat last = prev.last;
    for (int i = 0; i < data.length(); ++i) {
      const Beat keep{data.word(i), true};
      const Beat inv{invert(data.word(i), cfg), false};
      const int t_keep = beat_transitions(last, keep, cfg);
      const int t_inv = beat_transitions(last, inv, cfg);
      last = (t_inv < t_keep) ? inv : keep;
      beats.push_back(last);
    }
    return EncodedBurst(cfg, std::move(beats));
  }
};

}  // namespace

std::unique_ptr<Encoder> make_ac_encoder() {
  return std::make_unique<AcEncoder>();
}

}  // namespace dbi
