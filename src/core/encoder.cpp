#include "core/encoder.hpp"

#include <stdexcept>

namespace dbi {

std::string_view scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kRaw:
      return "RAW";
    case Scheme::kDc:
      return "DBI DC";
    case Scheme::kAc:
      return "DBI AC";
    case Scheme::kAcDc:
      return "DBI ACDC";
    case Scheme::kOpt:
      return "DBI OPT";
    case Scheme::kOptFixed:
      return "DBI OPT (Fixed)";
    case Scheme::kExhaustive:
      return "EXHAUSTIVE";
  }
  throw std::invalid_argument("scheme_name: unknown scheme");
}

std::unique_ptr<Encoder> make_encoder(Scheme s, const CostWeights& w) {
  switch (s) {
    case Scheme::kRaw:
      return make_raw_encoder();
    case Scheme::kDc:
      return make_dc_encoder();
    case Scheme::kAc:
      return make_ac_encoder();
    case Scheme::kAcDc:
      return make_acdc_encoder();
    case Scheme::kOpt:
      return make_opt_encoder(w);
    case Scheme::kOptFixed:
      return make_opt_fixed_encoder();
    case Scheme::kExhaustive:
      return make_exhaustive_encoder(w);
  }
  throw std::invalid_argument("make_encoder: unknown scheme");
}

}  // namespace dbi
