// Brute-force reference encoder: evaluates all 2^burst_length inversion
// patterns (the "naive algorithm" of Section III) and keeps the
// cheapest. Exists to prove the trellis solver optimal in tests and to
// enumerate Pareto frontiers; far too slow for production use.
#include <limits>
#include <stdexcept>

#include "core/encoder.hpp"

namespace dbi {
namespace {

constexpr int kMaxExhaustiveLength = 20;  // 2^20 patterns ~ 1M, still fast

class ExhaustiveEncoder final : public Encoder {
 public:
  explicit ExhaustiveEncoder(const CostWeights& w) : w_(w) { w_.validate(); }

  [[nodiscard]] std::string_view name() const override {
    return "EXHAUSTIVE";
  }

  [[nodiscard]] EncodedBurst encode(const Burst& data,
                                    const BusState& prev) const override {
    const int n = data.length();
    if (n > kMaxExhaustiveLength)
      throw std::invalid_argument(
          "ExhaustiveEncoder: burst too long for brute force");
    double best_cost = std::numeric_limits<double>::infinity();
    std::uint64_t best_mask = 0;
    const std::uint64_t end = std::uint64_t{1} << n;
    for (std::uint64_t mask = 0; mask < end; ++mask) {
      const EncodedBurst e = EncodedBurst::from_inversion_mask(data, mask);
      const double cost = encoded_cost(e, prev, w_);
      if (cost < best_cost) {  // ties keep the lowest mask
        best_cost = cost;
        best_mask = mask;
      }
    }
    return EncodedBurst::from_inversion_mask(data, best_mask);
  }

 private:
  CostWeights w_;
};

}  // namespace

std::unique_ptr<Encoder> make_exhaustive_encoder(const CostWeights& w) {
  return std::make_unique<ExhaustiveEncoder>(w);
}

}  // namespace dbi
