#include "core/pareto.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/encoding.hpp"

namespace dbi {

std::vector<ParetoPoint> pareto_frontier(const Burst& data,
                                         const BusState& prev) {
  const int n = data.length();
  if (n > 20)
    throw std::invalid_argument("pareto_frontier: burst too long");

  std::vector<ParetoPoint> all;
  all.reserve(std::size_t{1} << n);
  const std::uint64_t end = std::uint64_t{1} << n;
  for (std::uint64_t mask = 0; mask < end; ++mask) {
    const EncodedBurst e = EncodedBurst::from_inversion_mask(data, mask);
    all.push_back(ParetoPoint{e.zeros(), e.transitions(prev), mask});
  }

  // Sort by zeros ascending, transitions ascending; sweep keeping points
  // whose transition count strictly improves on everything seen before.
  std::sort(all.begin(), all.end(), [](const ParetoPoint& a,
                                       const ParetoPoint& b) {
    if (a.zeros != b.zeros) return a.zeros < b.zeros;
    if (a.transitions != b.transitions) return a.transitions < b.transitions;
    return a.invert_mask < b.invert_mask;
  });

  std::vector<ParetoPoint> frontier;
  int best_transitions = std::numeric_limits<int>::max();
  int last_zeros = -1;
  for (const ParetoPoint& p : all) {
    if (p.zeros == last_zeros) continue;  // keep cheapest per zero count
    if (p.transitions < best_transitions) {
      frontier.push_back(p);
      best_transitions = p.transitions;
    }
    last_zeros = p.zeros;
  }
  return frontier;
}

bool on_frontier(const std::vector<ParetoPoint>& frontier, int zeros,
                 int transitions) {
  return std::any_of(frontier.begin(), frontier.end(),
                     [&](const ParetoPoint& p) {
                       return p.zeros == zeros && p.transitions == transitions;
                     });
}

}  // namespace dbi
