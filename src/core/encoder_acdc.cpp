// DBI ACDC (Hollis, "Data bus inversion in high-speed memory
// applications", TCAS-II 2009; paper Section II): the first beat of a
// burst is encoded with the DC rule, the remaining beats with the AC
// rule. Under the paper's all-ones boundary condition the first-beat
// DC and AC decisions coincide, which is why the paper reports ACDC
// behaving identically to AC there; with other boundary states the two
// schemes differ (exercised by our ablation bench).
#include "core/byte_utils.hpp"
#include "core/encoder.hpp"

namespace dbi {
namespace {

class AcDcEncoder final : public Encoder {
 public:
  [[nodiscard]] std::string_view name() const override { return "DBI ACDC"; }

  [[nodiscard]] EncodedBurst encode(const Burst& data,
                                    const BusState& prev) const override {
    const BusConfig& cfg = data.config();
    std::vector<Beat> beats;
    beats.reserve(static_cast<std::size_t>(data.length()));
    Beat last = prev.last;
    for (int i = 0; i < data.length(); ++i) {
      const Word w = data.word(i);
      bool do_invert = false;
      if (i == 0) {
        const int zeros = count_zeros(w, cfg);
        do_invert = 2 * zeros > cfg.width + 1;
      } else {
        const Beat keep{w, true};
        const Beat inv{invert(w, cfg), false};
        do_invert = beat_transitions(last, inv, cfg) <
                    beat_transitions(last, keep, cfg);
      }
      last = do_invert ? Beat{invert(w, cfg), false} : Beat{w, true};
      beats.push_back(last);
    }
    return EncodedBurst(cfg, std::move(beats));
  }
};

}  // namespace

std::unique_ptr<Encoder> make_acdc_encoder() {
  return std::make_unique<AcDcEncoder>();
}

}  // namespace dbi
