// Cost model for DBI encodings: cost = alpha * transitions + beta * zeros.
//
// alpha is the energy per signal transition, beta the energy per
// transmitted zero (paper, Section III). Only the ratio alpha/beta
// matters for which encoding is optimal, so the paper also studies an
// integer-coefficient variant (alpha = beta = 1) that the hardware of
// Fig. 5 implements without multipliers.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/encoding.hpp"

namespace dbi {

/// Real-valued cost coefficients (units: energy, typically pJ, or the
/// dimensionless convex sweep alpha + beta = 1 used by Figs. 3/4).
struct CostWeights {
  double alpha = 1.0;  ///< cost per signal transition
  double beta = 1.0;   ///< cost per transmitted zero

  void validate() const {
    if (alpha < 0 || beta < 0)
      throw std::invalid_argument("CostWeights must be non-negative");
  }

  /// Convex pair (alpha, 1 - alpha) as used on the Fig. 3/4 x-axis.
  [[nodiscard]] static CostWeights ac_dc_tradeoff(double ac_cost) {
    if (ac_cost < 0.0 || ac_cost > 1.0)
      throw std::invalid_argument("ac_cost must be in [0,1]");
    return CostWeights{ac_cost, 1.0 - ac_cost};
  }

  friend constexpr bool operator==(const CostWeights&, const CostWeights&) =
      default;
};

/// Integer coefficients as implemented by the hardware datapath
/// (Fig. 5: fixed alpha = beta = 1, or configurable 3-bit coefficients).
struct IntCostWeights {
  int alpha = 1;
  int beta = 1;

  void validate() const {
    if (alpha < 0 || beta < 0)
      throw std::invalid_argument("IntCostWeights must be non-negative");
  }

  friend constexpr bool operator==(const IntCostWeights&,
                                   const IntCostWeights&) = default;
};

/// Quantises real weights to `bits`-wide integers preserving the ratio
/// as well as the grid allows (used by the coefficient ablation bench).
[[nodiscard]] IntCostWeights quantize_weights(const CostWeights& w, int bits);

[[nodiscard]] inline double burst_cost(const BurstStats& s,
                                       const CostWeights& w) {
  return w.alpha * s.transitions + w.beta * s.zeros;
}

[[nodiscard]] inline std::int64_t burst_cost(const BurstStats& s,
                                             const IntCostWeights& w) {
  return std::int64_t{w.alpha} * s.transitions + std::int64_t{w.beta} * s.zeros;
}

/// Cost of an encoded burst transmitted after `prev`.
[[nodiscard]] inline double encoded_cost(const EncodedBurst& e,
                                         const BusState& prev,
                                         const CostWeights& w) {
  return burst_cost(e.stats(prev), w);
}

}  // namespace dbi
