// DBI DC (paper, Section I): invert a beat whenever inversion reduces
// the number of transmitted zeros, counting the extra zero the DBI line
// itself contributes for an inverted beat.
//
// A beat with z zeros transmits z zeros non-inverted and
// (width - z) + 1 zeros inverted, so inversion pays iff
// width - z + 1 < z  <=>  2 z > width + 1. For the JEDEC width of 8
// this is the familiar "5 or more zeros" rule, which guarantees at most
// 4 zeros per transmitted beat.
#include "core/byte_utils.hpp"
#include "core/encoder.hpp"

namespace dbi {
namespace {

class DcEncoder final : public Encoder {
 public:
  [[nodiscard]] std::string_view name() const override { return "DBI DC"; }

  [[nodiscard]] EncodedBurst encode(const Burst& data,
                                    const BusState& /*prev*/) const override {
    const BusConfig& cfg = data.config();
    std::uint64_t mask = 0;
    for (int i = 0; i < data.length(); ++i) {
      const int zeros = count_zeros(data.word(i), cfg);
      if (2 * zeros > cfg.width + 1) mask |= std::uint64_t{1} << i;
    }
    return EncodedBurst::from_inversion_mask(data, mask);
  }
};

}  // namespace

std::unique_ptr<Encoder> make_dc_encoder() {
  return std::make_unique<DcEncoder>();
}

}  // namespace dbi
