#include "core/encoding.hpp"

#include <stdexcept>

#include "core/byte_utils.hpp"

namespace dbi {

EncodedBurst::EncodedBurst(const BusConfig& cfg, std::vector<Beat> beats,
                           bool uses_dbi_line)
    : cfg_(cfg), beats_(std::move(beats)), uses_dbi_line_(uses_dbi_line) {
  cfg_.validate();
  if (beats_.size() != static_cast<std::size_t>(cfg_.burst_length))
    throw std::invalid_argument("EncodedBurst: beat count != burst_length");
  for (const Beat& b : beats_)
    if ((b.dq & ~cfg_.dq_mask()) != 0)
      throw std::invalid_argument("EncodedBurst: beat does not fit width");
}

EncodedBurst EncodedBurst::from_inversion_mask(const Burst& data,
                                               std::uint64_t invert_mask) {
  const BusConfig& cfg = data.config();
  if (cfg.burst_length < 64 && (invert_mask >> cfg.burst_length) != 0)
    throw std::invalid_argument(
        "EncodedBurst: inversion mask has bits beyond burst length");
  std::vector<Beat> beats;
  beats.reserve(static_cast<std::size_t>(cfg.burst_length));
  for (int i = 0; i < cfg.burst_length; ++i) {
    const bool inv = (invert_mask >> i) & 1U;
    const Word w = data.word(i);
    beats.push_back(Beat{inv ? invert(w, cfg) : w, !inv});
  }
  return EncodedBurst(cfg, std::move(beats));
}

const Beat& EncodedBurst::beat(int i) const {
  return beats_.at(static_cast<std::size_t>(i));
}

std::uint64_t EncodedBurst::inversion_mask() const {
  std::uint64_t mask = 0;
  for (int i = 0; i < length(); ++i)
    if (inverted(i)) mask |= std::uint64_t{1} << i;
  return mask;
}

int EncodedBurst::zeros() const {
  int zeros = 0;
  for (const Beat& b : beats_) {
    zeros += count_zeros(b.dq, cfg_);
    if (uses_dbi_line_ && !b.dbi) ++zeros;
  }
  return zeros;
}

int EncodedBurst::transitions(const BusState& prev) const {
  int transitions = 0;
  Beat last = prev.last;
  for (const Beat& b : beats_) {
    transitions += hamming(last.dq, b.dq, cfg_);
    if (uses_dbi_line_ && last.dbi != b.dbi) ++transitions;
    last = b;
  }
  return transitions;
}

BusState EncodedBurst::final_state() const {
  return BusState{beats_.back()};
}

Burst EncodedBurst::decode() const {
  Burst out(cfg_);
  for (int i = 0; i < length(); ++i) {
    const Beat& b = beat(i);
    out.set_word(i, b.dbi ? b.dq : invert(b.dq, cfg_));
  }
  return out;
}

std::string EncodedBurst::to_string() const {
  std::string out;
  for (const Beat& b : beats_) {
    for (int bit = cfg_.width - 1; bit >= 0; --bit)
      out += ((b.dq >> bit) & 1U) ? '1' : '0';
    out += " dbi=";
    out += b.dbi ? '1' : '0';
    out += '\n';
  }
  return out;
}

}  // namespace dbi
