// Physical-layer waveform model of one DBI group: the level of every
// line (width DQ wires + the DBI wire) at every bit time.
//
// This reconstructs what the POD drivers of Fig. 1 actually put on the
// wires and re-derives zeros (DC termination time) and edges (CV^2
// events) from the waveform itself — an accounting path independent of
// EncodedBurst's beat-wise counters, used to cross-check them, plus
// PHY-level metrics the beat view cannot express (per-line zero runs,
// worst-case toggle lines).
#pragma once

#include <cstdint>
#include <vector>

#include "core/encoding.hpp"
#include "core/types.hpp"
#include "power/pod_params.hpp"

namespace dbi::phy {

class GroupWaveform {
 public:
  /// Starts from `initial` line levels (default: the paper's all-ones).
  explicit GroupWaveform(const dbi::BusConfig& cfg);
  GroupWaveform(const dbi::BusConfig& cfg, const dbi::Beat& initial);

  /// Appends one encoded burst (burst_length bit times). RAW bursts
  /// (uses_dbi_line() == false) leave the DBI wire parked at its
  /// current level.
  void append(const dbi::EncodedBurst& burst);

  [[nodiscard]] const dbi::BusConfig& config() const { return cfg_; }
  /// Total recorded bit times (excluding the initial state).
  [[nodiscard]] int bit_times() const {
    return static_cast<int>(history_.size());
  }
  /// Lines in the group: 0..width-1 are DQ, line `width` is DBI.
  [[nodiscard]] int lines() const { return cfg_.lines(); }

  /// Level of `line` at bit time `t` (bounds-checked).
  [[nodiscard]] bool level(int line, int t) const;

  // ------------------------------------------------ global accounting
  /// Line-bit-times spent at 0 — the quantity E_zero multiplies.
  [[nodiscard]] std::int64_t zero_level_time() const;
  /// Level changes across all lines, including the change from the
  /// initial state into bit time 0 — the quantity E_transition
  /// multiplies.
  [[nodiscard]] std::int64_t edges() const;
  /// Eq. (4) evaluated on the waveform.
  [[nodiscard]] double energy(const power::PodParams& pod) const;

  // ------------------------------------------------ per-line metrics
  [[nodiscard]] std::int64_t line_zero_time(int line) const;
  [[nodiscard]] std::int64_t line_edges(int line) const;
  /// Longest consecutive run of 0 on a line — worst-case continuous
  /// DC termination current (thermal hot spot indicator).
  [[nodiscard]] int line_longest_zero_run(int line) const;

 private:
  [[nodiscard]] bool beat_level(const dbi::Beat& beat, int line) const;
  void check_line(int line) const;

  dbi::BusConfig cfg_;
  dbi::Beat initial_;
  std::vector<dbi::Beat> history_;  // one Beat per bit time
};

}  // namespace dbi::phy
