#include "phy/waveform.hpp"

#include <algorithm>
#include <stdexcept>

#include "power/interface_energy.hpp"

namespace dbi::phy {

GroupWaveform::GroupWaveform(const dbi::BusConfig& cfg)
    : GroupWaveform(cfg, dbi::Beat{cfg.dq_mask(), true}) {}

GroupWaveform::GroupWaveform(const dbi::BusConfig& cfg,
                             const dbi::Beat& initial)
    : cfg_(cfg), initial_(initial) {
  cfg_.validate();
  if ((initial_.dq & ~cfg_.dq_mask()) != 0)
    throw std::invalid_argument("GroupWaveform: initial state too wide");
}

void GroupWaveform::append(const dbi::EncodedBurst& burst) {
  if (!(burst.config() == cfg_))
    throw std::invalid_argument("GroupWaveform: geometry mismatch");
  const bool drives_dbi = burst.uses_dbi_line();
  for (int i = 0; i < burst.length(); ++i) {
    dbi::Beat beat = burst.beat(i);
    if (!drives_dbi) {
      // RAW transmission: the DBI wire is not driven; it parks at its
      // previous level instead of following the nominal idle-high.
      beat.dbi = history_.empty() ? initial_.dbi : history_.back().dbi;
    }
    history_.push_back(beat);
  }
}

bool GroupWaveform::beat_level(const dbi::Beat& beat, int line) const {
  if (line == cfg_.width) return beat.dbi;
  return ((beat.dq >> line) & 1U) != 0;
}

void GroupWaveform::check_line(int line) const {
  if (line < 0 || line >= lines())
    throw std::invalid_argument("GroupWaveform: line out of range");
}

bool GroupWaveform::level(int line, int t) const {
  check_line(line);
  if (t < 0 || t >= bit_times())
    throw std::invalid_argument("GroupWaveform: bit time out of range");
  return beat_level(history_[static_cast<std::size_t>(t)], line);
}

std::int64_t GroupWaveform::zero_level_time() const {
  std::int64_t total = 0;
  for (int line = 0; line < lines(); ++line) total += line_zero_time(line);
  return total;
}

std::int64_t GroupWaveform::edges() const {
  std::int64_t total = 0;
  for (int line = 0; line < lines(); ++line) total += line_edges(line);
  return total;
}

double GroupWaveform::energy(const power::PodParams& pod) const {
  return static_cast<double>(zero_level_time()) * power::energy_zero(pod) +
         static_cast<double>(edges()) * power::energy_transition(pod);
}

std::int64_t GroupWaveform::line_zero_time(int line) const {
  check_line(line);
  std::int64_t zeros = 0;
  for (const dbi::Beat& beat : history_)
    if (!beat_level(beat, line)) ++zeros;
  return zeros;
}

std::int64_t GroupWaveform::line_edges(int line) const {
  check_line(line);
  std::int64_t edges = 0;
  bool last = beat_level(initial_, line);
  for (const dbi::Beat& beat : history_) {
    const bool now = beat_level(beat, line);
    if (now != last) ++edges;
    last = now;
  }
  return edges;
}

int GroupWaveform::line_longest_zero_run(int line) const {
  check_line(line);
  int longest = 0, current = 0;
  for (const dbi::Beat& beat : history_) {
    current = beat_level(beat, line) ? 0 : current + 1;
    longest = std::max(longest, current);
  }
  return longest;
}

}  // namespace dbi::phy
