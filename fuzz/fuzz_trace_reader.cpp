// libFuzzer target: arbitrary bytes into TraceReader. The parser's
// contract is "reject with TraceError or parse correctly, never UB" —
// ASan/UBSan turn any violation (overread, lying chunk index, huge
// decompression, unpaired mask rider) into a crash. CRC verification
// is off so the structural validators themselves are exercised rather
// than a checksum front door; the CRC path is covered by unit tests.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/trace_reader.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::vector<std::uint8_t> image(data, data + size);
  try {
    const auto reader =
        dbi::trace::TraceReader::from_bytes(std::move(image),
                                            /*verify_crc=*/false);
    // Walk every chunk the way replay / Session consumers do: payload
    // views (RLE decompression included) and, for encoded traces, the
    // mask streams.
    std::vector<std::uint8_t> scratch;
    std::vector<std::uint8_t> mask_scratch;
    std::vector<std::uint64_t> mask_words;
    for (std::size_t c = 0; c < reader.chunk_count(); ++c) {
      (void)reader.chunk_payload(c, scratch);
      if (reader.chunk(c).has_mask()) {
        try {
          (void)reader.chunk_masks(c, mask_scratch, mask_words);
        } catch (const dbi::trace::TraceError&) {
          // Mask tails beyond burst_length reject per chunk.
        }
      }
    }
    // Materialise small plain traces through the legacy view too.
    if (!reader.wide() && !reader.encoded() && reader.bursts() <= 4096)
      (void)reader.to_burst_trace();
  } catch (const dbi::trace::TraceError&) {
    // Every malformed input must land here — anything else is a find.
  }
  return 0;
}
