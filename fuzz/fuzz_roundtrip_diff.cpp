// libFuzzer target: differential encode -> decode round trip. The
// input bytes pick a scheme, geometry, kernel variant and payload; the
// properties under test are
//   decode(apply(payload, encode(payload))) == payload   (identity)
// for the engine kernels at every geometry the bytes can reach,
// bit-exact parity of the drawn kernel variant against the portable
// "swar" reference (masks, stats, threaded state, decoded bytes — the
// SIMD differential), plus scalar-reference parity on a bounded prefix
// of the stream. A mismatch aborts; sanitizers catch UB.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include "core/encoder.hpp"
#include "engine/batch_decoder.hpp"
#include "engine/batch_encoder.hpp"
#include "engine/kernel_registry.hpp"

namespace {

using namespace dbi;

constexpr Scheme kSchemes[] = {Scheme::kRaw,  Scheme::kDc,
                               Scheme::kAc,   Scheme::kAcDc,
                               Scheme::kOpt,  Scheme::kOptFixed};

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "fuzz_roundtrip_diff: %s\n", what);
  std::abort();
}

/// Picks a registered kernel variant from a fuzz byte; unavailable ISAs
/// (corpus replayed on a smaller host) degrade to the portable
/// reference so every input keeps exercising the full pipeline.
const engine::KernelVariant& draw_kernel(std::uint8_t byte) {
  const auto kernels = engine::registered_kernels();
  const engine::KernelVariant* k = kernels[byte % kernels.size()];
  return engine::isa_available(k->isa()) ? *k : engine::portable_kernel();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 4) return 0;
  const Scheme scheme = kSchemes[data[0] % 6];
  const bool wide = (data[3] & 1) != 0;
  const bool reset = (data[3] & 2) != 0;
  const engine::KernelVariant& variant = draw_kernel(data[3] >> 2);
  const int width = wide ? 1 + data[1] % 64 : 1 + data[1] % 32;
  const int bl = 1 + data[2] % 64;
  data += 4;
  size -= 4;

  engine::BatchEncoder engine(scheme, CostWeights{0.56, 0.44});
  engine.set_kernel(variant);
  engine::BatchEncoder swar(scheme, CostWeights{0.56, 0.44});
  swar.set_kernel(engine::portable_kernel());
  engine::BatchDecoder decoder;
  decoder.set_kernel(variant);
  engine::BatchDecoder swar_decoder;
  swar_decoder.set_kernel(engine::portable_kernel());
  const auto scalar = make_encoder(scheme, CostWeights{0.56, 0.44});

  if (!wide) {
    const BusConfig cfg{width, bl};
    const auto bb = static_cast<std::size_t>(cfg.bytes_per_burst());
    const auto bpb = static_cast<std::size_t>(cfg.bytes_per_beat());
    const std::size_t bursts = size / bb;
    if (bursts == 0) return 0;
    std::vector<std::uint8_t> payload(data, data + bursts * bb);
    for (std::size_t t = 0; t < payload.size() / bpb; ++t)
      for (std::size_t b = 0; b < bpb; ++b)
        payload[t * bpb + b] &=
            static_cast<std::uint8_t>(cfg.dq_mask() >> (8 * b));

    std::vector<engine::BurstResult> results(bursts);
    std::vector<engine::BurstResult> ref_results(bursts);
    std::vector<std::uint64_t> masks(bursts);
    BusState state = BusState::all_ones(cfg);
    BusState ref_state = BusState::all_ones(cfg);
    if (reset) {
      for (std::size_t i = 0; i < bursts; ++i) {
        state = BusState::all_ones(cfg);
        ref_state = BusState::all_ones(cfg);
        const auto burst =
            std::span<const std::uint8_t>(payload).subspan(i * bb, bb);
        (void)engine.encode_packed(burst, cfg, state, results.data() + i);
        (void)swar.encode_packed(burst, cfg, ref_state, ref_results.data() + i);
      }
    } else {
      (void)engine.encode_packed(payload, cfg, state, results.data());
      (void)swar.encode_packed(payload, cfg, ref_state, ref_results.data());
    }
    if (results != ref_results)
      fail("narrow kernel variant diverges from the portable reference");
    if (!(state == ref_state))
      fail("narrow kernel variant leaves a diverged line state");
    for (std::size_t i = 0; i < bursts; ++i) masks[i] = results[i].invert_mask;

    std::vector<std::uint8_t> tx(payload.size());
    decoder.apply_packed(payload, masks, cfg, tx);
    std::vector<std::uint8_t> out(payload.size());
    decoder.decode_packed(tx, masks, cfg, out);
    if (out != payload) fail("narrow engine round trip is not identity");
    std::vector<std::uint8_t> swar_out(payload.size());
    swar_decoder.decode_packed(tx, masks, cfg, swar_out);
    if (swar_out != out)
      fail("narrow decode variant diverges from the portable reference");

    // Scalar-reference parity on a bounded prefix.
    const std::size_t check = bursts < 4 ? bursts : 4;
    BusState sstate = BusState::all_ones(cfg);
    std::vector<Word> words(static_cast<std::size_t>(bl));
    for (std::size_t i = 0; i < check; ++i) {
      if (reset) sstate = BusState::all_ones(cfg);
      for (int t = 0; t < bl; ++t) {
        Word w = 0;
        for (std::size_t b = 0; b < bpb; ++b)
          w |= static_cast<Word>(
                   payload[i * bb + static_cast<std::size_t>(t) * bpb + b])
               << (8 * b);
        words[static_cast<std::size_t>(t)] = w;
      }
      const Burst burst(cfg, words);
      const EncodedBurst e = scalar->encode(burst, sstate);
      if (e.inversion_mask() != masks[i])
        fail("engine mask diverges from the scalar reference");
      if (!(e.decode() == burst)) fail("scalar decode is not identity");
      sstate = e.final_state();
    }
    return 0;
  }

  const WideBusConfig cfg{width, bl};
  const int groups = cfg.groups();
  const auto bb = static_cast<std::size_t>(cfg.bytes_per_burst());
  const std::size_t bursts = size / bb;
  if (bursts == 0) return 0;
  std::vector<std::uint8_t> payload(data, data + bursts * bb);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] &= static_cast<std::uint8_t>(
        cfg.group_mask(static_cast<int>(i % static_cast<std::size_t>(groups))));

  std::vector<engine::BurstResult> results(
      bursts * static_cast<std::size_t>(groups));
  std::vector<engine::BurstResult> ref_results(results.size());
  std::vector<BusState> states(static_cast<std::size_t>(groups));
  std::vector<BusState> ref_states(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g)
    states[static_cast<std::size_t>(g)] = ref_states[static_cast<std::size_t>(
        g)] = BusState::all_ones(cfg.group_config(g));
  if (reset) {
    for (std::size_t i = 0; i < bursts; ++i) {
      for (int g = 0; g < groups; ++g)
        states[static_cast<std::size_t>(g)] =
            ref_states[static_cast<std::size_t>(g)] =
                BusState::all_ones(cfg.group_config(g));
      const auto burst =
          std::span<const std::uint8_t>(payload).subspan(i * bb, bb);
      (void)engine.encode_packed_wide(
          burst, cfg, states,
          results.data() + i * static_cast<std::size_t>(groups));
      (void)swar.encode_packed_wide(
          burst, cfg, ref_states,
          ref_results.data() + i * static_cast<std::size_t>(groups));
    }
  } else {
    (void)engine.encode_packed_wide(payload, cfg, states, results.data());
    (void)swar.encode_packed_wide(payload, cfg, ref_states,
                                  ref_results.data());
  }
  if (results != ref_results)
    fail("wide kernel variant diverges from the portable reference");
  for (int g = 0; g < groups; ++g)
    if (!(states[static_cast<std::size_t>(g)] ==
          ref_states[static_cast<std::size_t>(g)]))
      fail("wide kernel variant leaves a diverged group state");
  std::vector<std::uint64_t> masks(results.size());
  for (std::size_t i = 0; i < results.size(); ++i)
    masks[i] = results[i].invert_mask;

  std::vector<std::uint8_t> tx(payload.size());
  decoder.apply_packed_wide(payload, masks, cfg, tx);
  std::vector<std::uint8_t> out(payload.size());
  decoder.decode_packed_wide(tx, masks, cfg, out);
  if (out != payload) fail("wide engine round trip is not identity");
  std::vector<std::uint8_t> swar_out(payload.size());
  swar_decoder.decode_packed_wide(tx, masks, cfg, swar_out);
  if (swar_out != out)
    fail("wide decode variant diverges from the portable reference");
  return 0;
}
