// libFuzzer target: arbitrary bytes into LakeReader. The catalog
// parser's contract mirrors TraceReader's — reject with LakeError or
// parse correctly, never UB — so ASan/UBSan turn any violation
// (overread, lying member count, runaway name length, overflowing
// totals) into a crash. CRC verification is off so the structural
// validators themselves are exercised rather than a checksum front
// door; the CRC path is covered by unit tests.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "lake/lake.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::vector<std::uint8_t> image(data, data + size);
  try {
    const auto reader =
        dbi::lake::LakeReader::from_bytes(std::move(image),
                                          /*verify_crc=*/false);
    // Walk the parsed records the way the replay planner does.
    // (member_path needs a backing directory, which from_bytes readers
    // never have.)
    for (const dbi::lake::LakeMember& m : reader.members()) {
      (void)m.geometry();
      (void)m.encoded();
      (void)m.mixed();
    }
  } catch (const dbi::lake::LakeError&) {
    // Every malformed input must land here — anything else is a find.
  }
  return 0;
}
