// A x32 GDDR5X write channel (4 byte lanes, each with a DBI wire,
// burst length 8 = 32-byte writes) driven with realistic traffic
// classes. Shows how much interface energy each DBI scheme saves on
// structured data compared to the uniform-random traffic the paper
// evaluates — the motivation for DBI in GPUs (framebuffers, tensors,
// text, sparse pages).
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "power/interface_energy.hpp"
#include "sim/table.hpp"
#include "workload/channel.hpp"
#include "workload/generators.hpp"

// The channel below is Session-backed: the Scheme constructor routes
// every write through the dbi::Session facade over the batch-engine
// kernels (bit-exact vs the scalar encoders).

namespace {

using namespace dbi;

// Pulls 32-byte write payloads out of a burst source by concatenating
// lane bursts beat-major, the same layout Channel::write expects.
std::vector<std::uint8_t> next_line(workload::BurstSource& src,
                                    const workload::ChannelConfig& cfg) {
  std::vector<std::uint8_t> line(
      static_cast<std::size_t>(cfg.bytes_per_write()));
  std::vector<Burst> lane_bursts;
  lane_bursts.reserve(static_cast<std::size_t>(cfg.lanes));
  for (int l = 0; l < cfg.lanes; ++l) lane_bursts.push_back(src.next());
  for (int beat = 0; beat < cfg.lane.burst_length; ++beat)
    for (int lane = 0; lane < cfg.lanes; ++lane)
      line[static_cast<std::size_t>(beat * cfg.lanes + lane)] =
          static_cast<std::uint8_t>(
              lane_bursts[static_cast<std::size_t>(lane)].word(beat));
  return line;
}

double channel_energy_per_write(workload::BurstSource& src, Scheme scheme,
                                const power::PodParams& pod,
                                const CostWeights& weights, int writes) {
  workload::ChannelConfig cfg;  // x32: 4 lanes, BL8
  workload::Channel channel(cfg, scheme, weights);
  for (int i = 0; i < writes; ++i) (void)channel.write(next_line(src, cfg));
  const auto& s = channel.stats();
  return s.zeros_per_write() * power::energy_zero(pod) +
         s.transitions_per_write() * power::energy_transition(pod);
}

}  // namespace

int main() {
  const power::PodParams pod = power::PodParams::pod135(3e-12, 12e9);
  const CostWeights weights = power::weights_from_pod(pod);
  const int writes = 2000;
  const BusConfig lane{8, 8};

  std::cout << "x32 GDDR5X write channel, POD135 @ 12 Gbps, 3 pF, "
            << writes << " writes of 32 B per workload\n"
            << "(energy per 32-byte write, all four lanes)\n\n";

  sim::Table table({"workload", "RAW", "DBI DC", "DBI AC", "DBI OPT",
                    "OPT saves vs best conv."});

  const struct {
    const char* label;
    int kind;
  } workloads[] = {{"uniform random", 0}, {"ascii text", 1},
                   {"float32 stream", 2}, {"sparse (70% zero words)", 3},
                   {"counter/addresses", 4}, {"markov (p_stay=0.9)", 5},
                   {"framebuffer (ARGB)", 6}, {"nn weights (float32)", 7}};

  for (const auto& w : workloads) {
    auto make_src = [&](std::uint64_t seed)
        -> std::unique_ptr<workload::BurstSource> {
      switch (w.kind) {
        case 1:
          return workload::make_text_source(lane, seed);
        case 2:
          return workload::make_float_source(lane, seed);
        case 3:
          return workload::make_sparse_source(lane, 0.7, seed);
        case 4:
          return workload::make_counter_source(lane, seed, 1);
        case 5:
          return workload::make_markov_source(lane, 0.9, seed);
        case 6:
          return workload::make_framebuffer_source(lane, seed);
        case 7:
          return workload::make_tensor_source(lane, seed);
        default:
          return workload::make_uniform_source(lane, seed);
      }
    };

    std::vector<double> energies;
    for (Scheme s : {Scheme::kRaw, Scheme::kDc, Scheme::kAc, Scheme::kOpt}) {
      auto src = make_src(42);  // same data for every scheme
      energies.push_back(
          channel_energy_per_write(*src, s, pod, weights, writes));
    }
    const double best_conv = std::min(energies[1], energies[2]);
    table.add_row({w.label, sim::fmt_eng(energies[0], "J"),
                   sim::fmt_eng(energies[1], "J"),
                   sim::fmt_eng(energies[2], "J"),
                   sim::fmt_eng(energies[3], "J"),
                   sim::fmt(100.0 * (1.0 - energies[3] / best_conv), 1) +
                       " %"});
  }
  std::cout << table
            << "\nNote: persistent per-lane line state (real controller "
               "behaviour), DBI OPT configured\nwith the operating point's "
               "true (alpha, beta) energy coefficients.\n";
  return 0;
}
