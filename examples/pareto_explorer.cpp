// Pareto explorer: for a burst (the paper's Fig. 2 example by default,
// or 8 hex bytes from the command line) enumerate every achievable
// (zeros, transitions) trade-off, mark which encodings DC / AC / OPT
// pick, and show how the optimal pick walks the frontier as the
// alpha/beta ratio changes.
//
// Usage: pareto_explorer [byte0 byte1 ... byte7]   (hex, e.g. 8e 86 ...)
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/encoder.hpp"
#include "core/pareto.hpp"
#include "sim/experiments.hpp"
#include "sim/table.hpp"

int main(int argc, char** argv) {
  using namespace dbi;

  const BusConfig cfg{8, 8};
  Burst data = sim::paper_example_burst();
  if (argc == 9) {
    std::vector<Word> words;
    for (int i = 1; i < 9; ++i) {
      const long v = std::strtol(argv[i], nullptr, 16);
      if (v < 0 || v > 0xFF) {
        std::cerr << "bytes must be 00..ff\n";
        return 1;
      }
      words.push_back(static_cast<Word>(v));
    }
    data = Burst(cfg, words);
  } else if (argc != 1) {
    std::cerr << "usage: pareto_explorer [b0 b1 b2 b3 b4 b5 b6 b7]\n";
    return 1;
  }

  const BusState boundary = BusState::all_ones(cfg);
  std::cout << "Burst:";
  for (int i = 0; i < data.length(); ++i)
    std::printf(" %02X", data.word(i));
  std::cout << "\n\nPareto frontier over all 256 inversion patterns "
               "(zeros vs transitions):\n\n";

  const auto frontier = pareto_frontier(data, boundary);
  const auto dc = make_dc_encoder()->encode(data, boundary);
  const auto ac = make_ac_encoder()->encode(data, boundary);

  sim::Table table({"zeros", "transitions", "mask", "found by"});
  for (const ParetoPoint& p : frontier) {
    std::string found;
    if (p.zeros == dc.zeros() && p.transitions == dc.transitions(boundary))
      found += "DC ";
    if (p.zeros == ac.zeros() && p.transitions == ac.transitions(boundary))
      found += "AC ";
    // Which alpha/beta ratios make OPT choose this point?
    std::string alphas;
    for (int i = 0; i <= 20; ++i) {
      const double a = i / 20.0;
      const auto e = make_opt_encoder(CostWeights::ac_dc_tradeoff(a))
                         ->encode(data, boundary);
      if (e.zeros() == p.zeros && e.transitions(boundary) == p.transitions) {
        if (alphas.empty()) alphas = "OPT a=" + sim::fmt(a, 2);
      }
    }
    if (!alphas.empty()) found += alphas;
    if (found.empty()) found = "-";
    char mask[8];
    std::snprintf(mask, sizeof mask, "0x%02X",
                  static_cast<unsigned>(p.invert_mask));
    table.add_row({std::to_string(p.zeros), std::to_string(p.transitions),
                   mask, found});
  }
  std::cout << table;

  std::cout << "\nCost of each scheme at alpha = beta = 1 (the paper's "
               "Section III numbers for\nthe default burst: DC 68, AC 65, "
               "OPT 52):\n";
  for (Scheme s : {Scheme::kDc, Scheme::kAc, Scheme::kOpt}) {
    const auto e =
        make_encoder(s, CostWeights{1, 1})->encode(data, boundary);
    std::cout << "  " << scheme_name(s) << ": "
              << encoded_cost(e, boundary, CostWeights{1, 1}) << "\n";
  }
  return 0;
}
