// Hardware designer walkthrough: builds the four gate-level encoder
// designs of Table I, verifies each against its behavioural
// specification on live data, and prints the synthesis-style report
// (cells, area, leakage, timing) from the netlist substrate.
#include <iostream>
#include <string>

#include "core/encoder.hpp"
#include "hw/hw_encoder.hpp"
#include "hw/synthesis.hpp"
#include "netlist/tech.hpp"
#include "netlist/timing.hpp"
#include "sim/table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace dbi;

  const BusConfig cfg{8, 8};
  auto src = workload::make_uniform_source(cfg, 99);
  const auto trace = workload::BurstTrace::collect(*src, 300);
  const BusState boundary = BusState::all_ones(cfg);

  std::cout << "Building the Fig. 5 trellis datapath and friends as gate "
               "netlists...\n\n";

  struct Case {
    hw::HwDesign design;
    std::unique_ptr<Encoder> reference;
    int alpha = 1, beta = 1;
  };
  Case cases[] = {
      {hw::build_dbi_dc(), make_dc_encoder(), 1, 1},
      {hw::build_dbi_ac(), make_ac_encoder(), 1, 1},
      {hw::build_dbi_opt_fixed(), make_opt_fixed_encoder(), 1, 1},
      {hw::build_dbi_opt_3bit(),
       make_opt_int_encoder(IntCostWeights{3, 2}), 3, 2},
  };

  sim::Table equiv({"design", "gates", "inputs", "outputs",
                    "bursts checked", "mismatches"});
  for (Case& c : cases) {
    const auto gates = c.design.net.physical_gates();
    const auto ins = c.design.net.inputs().size();
    const auto outs = c.design.net.outputs().size();
    const std::string name = c.design.name;
    hw::HwEncoder encoder(std::move(c.design), c.alpha, c.beta);
    int mismatches = 0;
    for (const Burst& b : trace.bursts())
      if (encoder.encode(b, boundary).inversion_mask() !=
          c.reference->encode(b, boundary).inversion_mask())
        ++mismatches;
    equiv.add_row({name, std::to_string(gates), std::to_string(ins),
                   std::to_string(outs),
                   std::to_string(trace.size()),
                   std::to_string(mismatches)});
  }
  std::cout << "Gate-level vs behavioural equivalence:\n" << equiv << "\n";

  std::cout << "Synthesis report (generic 32 nm model, retimed "
               "pipelines as in the paper):\n\n";
  hw::Table1Options options;
  options.max_activity_bursts = 300;
  const auto rows = hw::table1_synthesis(trace, options);
  sim::Table synth({"design", "cells", "area [um2]", "static [uW]",
                    "dynamic [uW]", "fmax [GHz]", "E/burst [pJ]",
                    "comb path [ns]"});
  for (const auto& r : rows)
    synth.add_row({r.scheme, std::to_string(r.cells), sim::fmt(r.area_um2, 0),
                   sim::fmt(r.static_uw, 0), sim::fmt(r.dynamic_uw, 0),
                   sim::fmt(r.fmax_ghz, 2),
                   sim::fmt(r.energy_per_burst_pj, 3),
                   sim::fmt(r.critical_path_ns, 2)});
  std::cout << synth
            << "\n(12 Gbps GDDR5X needs a 1.5 GHz burst rate: the fixed-"
               "coefficient trellis design\nholds it, the 3-bit "
               "configurable one needs parallel instances — Table I's "
               "story.)\n";
  return 0;
}
