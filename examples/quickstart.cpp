// Quickstart: encode one burst with every DBI scheme and compare the
// zeros / transitions / energy each one produces.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "api/session.hpp"
#include "core/encoder.hpp"
#include "power/interface_energy.hpp"
#include "sim/experiments.hpp"
#include "sim/table.hpp"

int main() {
  using namespace dbi;

  // The 8-byte burst from Fig. 2 of the paper.
  const Burst data = sim::paper_example_burst();
  const BusState boundary = BusState::all_ones(data.config());

  std::cout << "Payload (one byte per beat):\n";
  for (int i = 0; i < data.length(); ++i)
    std::printf("  beat %d: 0x%02X\n", i, data.word(i));

  // A GDDR5X-style operating point: POD135 at 12 Gbps with 3 pF load.
  const power::PodParams pod = power::PodParams::pod135(3e-12, 12e9);
  const CostWeights energy_weights = power::weights_from_pod(pod);
  std::printf(
      "\nPOD135 @ 12 Gbps, 3 pF: E_zero = %s, E_transition = %s\n\n",
      sim::fmt_eng(energy_weights.beta, "J").c_str(),
      sim::fmt_eng(energy_weights.alpha, "J").c_str());

  sim::Table table({"scheme", "zeros", "transitions", "interface energy",
                    "vs RAW"});
  const auto raw_energy = power::burst_energy(
      pod, make_raw_encoder()->encode(data, boundary).stats(boundary));

  for (Scheme s : {Scheme::kRaw, Scheme::kDc, Scheme::kAc, Scheme::kAcDc,
                   Scheme::kOptFixed, Scheme::kOpt}) {
    const auto encoder = make_encoder(s, energy_weights);
    const EncodedBurst encoded = encoder->encode(data, boundary);
    const BurstStats stats = encoded.stats(boundary);
    const double energy = power::burst_energy(pod, stats);
    table.add_row({std::string(encoder->name()),
                   std::to_string(stats.zeros),
                   std::to_string(stats.transitions),
                   sim::fmt_eng(energy, "J"),
                   sim::fmt(100.0 * (energy / raw_energy - 1.0), 1) + " %"});
  }
  std::cout << table;

  // Decoding is a receiver-side XOR with the DBI wire: show it round-trips.
  const auto opt = make_opt_encoder(energy_weights);
  const EncodedBurst encoded = opt->encode(data, boundary);
  std::cout << "\nDBI OPT wire image (MSB first, dbi=0 means inverted):\n"
            << encoded.to_string();
  std::cout << (encoded.decode() == data
                    ? "decode(encode(data)) == data  [OK]\n"
                    : "round-trip FAILED\n");

  // Streams go through the dbi::Session facade: one SessionSpec
  // (scheme + geometry), one Source, one Sink. Here: 100K bursts of
  // the ASCII-text corpus scenario over a x32 bus, DBI AC.
  {
    SessionSpec spec;
    spec.scheme = Scheme::kAc;
    spec.geometry = Geometry::wide(32);
    Session session(spec);
    const auto source = make_corpus_source("ascii-text", 100000, /*seed=*/1);
    const StreamStats totals = session.run(*source);
    std::printf(
        "\nSession quickstart: %lld ascii-text bursts on a %s bus under %s "
        "-> %.2f transitions/burst\n",
        static_cast<long long>(totals.bursts),
        spec.geometry.to_string().c_str(),
        std::string(session.scheme_name()).c_str(),
        totals.transitions_per_burst());
  }
  return 0;
}
