// DDR4 (POD12) operating-point explorer: for a grid of data rates and
// load capacitances, report which DBI scheme minimises total energy
// (interface + encoder) and what it saves against RAW transmission.
// The kind of table a memory-controller architect would want before
// committing to an encoder block.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "power/system_energy.hpp"
#include "sim/experiments.hpp"
#include "sim/table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace dbi;

  const BusConfig cfg{8, 8};
  auto src = workload::make_uniform_source(cfg, 7);
  const auto trace = workload::BurstTrace::collect(*src, 4000);

  const auto hw_dc = power::table1_hardware(Scheme::kDc);
  const auto hw_ac = power::table1_hardware(Scheme::kAc);
  const auto hw_fx = power::table1_hardware(Scheme::kOptFixed);

  // The Session-routed engine twins: identical numbers to the scalar
  // per-burst encoders, at stream speed.
  const sim::MeanStats dc = sim::mean_stats(trace, Scheme::kDc);
  const sim::MeanStats ac = sim::mean_stats(trace, Scheme::kAc);
  const sim::MeanStats fx = sim::mean_stats(trace, Scheme::kOptFixed);
  const sim::MeanStats raw = sim::mean_stats(trace, Scheme::kRaw);

  std::cout << "DDR4 / POD12 scheme explorer (uniform random writes, "
            << trace.size() << " bursts)\n"
            << "total = interface energy (Eqs. 1-4) + encoder energy "
               "(Table I model)\n\n";

  sim::Table table({"rate [Gbps]", "c_load [pF]", "RAW [pJ]", "DC [pJ]",
                    "AC [pJ]", "OPT(Fixed) [pJ]", "winner", "vs RAW"});

  for (double c_load_pf : {1.0, 2.0, 4.0}) {
    for (double gbps : {1.6, 3.2, 6.4, 12.8}) {
      const power::PodParams pod =
          power::PodParams::pod12(c_load_pf * 1e-12, gbps * 1e9);
      const double rate = power::burst_rate(pod, cfg);

      auto total = [&](const sim::MeanStats& m,
                       const power::EncoderHardware& hw) {
        return m.zeros * power::energy_zero(pod) +
               m.transitions * power::energy_transition(pod) +
               hw.energy_per_burst(rate);
      };

      const double e_raw = raw.zeros * power::energy_zero(pod) +
                           raw.transitions * power::energy_transition(pod);
      const double e_dc = total(dc, hw_dc);
      const double e_ac = total(ac, hw_ac);
      const double e_fx = total(fx, hw_fx);

      const double best = std::min({e_dc, e_ac, e_fx, e_raw});
      std::string winner = "RAW";
      if (best == e_dc) winner = "DBI DC";
      if (best == e_ac) winner = "DBI AC";
      if (best == e_fx) winner = "DBI OPT (Fixed)";

      table.add_row({sim::fmt(gbps, 1), sim::fmt(c_load_pf, 0),
                     sim::fmt(e_raw * 1e12, 2), sim::fmt(e_dc * 1e12, 2),
                     sim::fmt(e_ac * 1e12, 2), sim::fmt(e_fx * 1e12, 2),
                     winner,
                     sim::fmt(100.0 * (1.0 - best / e_raw), 1) + " %"});
    }
  }
  std::cout << table
            << "\nReading guide: at low rates zeros dominate (DC wins); as "
               "the rate or load grows,\ntransitions dominate and the "
               "joint DC/AC optimum pulls ahead — the Fig. 7/8 story\n"
               "on a DDR4 electrical point.\n";
  return 0;
}
