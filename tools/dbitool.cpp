// dbitool — command-line front end to the dbicodec library.
//
//   dbitool gen     --source uniform --bursts 1000 --seed 1 -o trace.txt
//   dbitool stats   trace.txt
//   dbitool encode  trace.txt --scheme opt --alpha 0.56 [--csv]
//   dbitool sweep   trace.txt --steps 21 [--csv]
//   dbitool rates   trace.txt --pod pod135 --cload-pf 3 [--csv]
//   dbitool synth   [--bytes 8]
//   dbitool verilog --design opt-fixed -o encoder.v
//
// Every subcommand prints an aligned table (or CSV with --csv) so the
// tool slots into shell pipelines and plotting scripts.
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/encoder.hpp"
#include "core/pareto.hpp"
#include "hw/fault_study.hpp"
#include "hw/hw_design.hpp"
#include "hw/synthesis.hpp"
#include "netlist/export.hpp"
#include "power/interface_energy.hpp"
#include "sim/experiments.hpp"
#include "sim/table.hpp"
#include "workload/generators.hpp"
#include "workload/trace.hpp"

namespace {

using namespace dbi;

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  bool csv = false;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = options.find(key);
    return it != options.end() ? it->second : fallback;
  }
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = options.find(key);
    return it != options.end() ? std::stod(it->second) : fallback;
  }
  [[nodiscard]] long get_long(const std::string& key, long fallback) const {
    const auto it = options.find(key);
    return it != options.end() ? std::stol(it->second) : fallback;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token == "--csv") {
      args.csv = true;
    } else if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + token);
      args.options[key] = argv[++i];
    } else if (token == "-o") {
      if (i + 1 >= argc) throw std::runtime_error("missing value for -o");
      args.options["output"] = argv[++i];
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

void emit(const sim::Table& table, const Args& args) {
  if (args.csv)
    std::cout << table.to_csv();
  else
    std::cout << table;
}

workload::BurstTrace load_trace(const Args& args) {
  if (args.positional.empty())
    throw std::runtime_error("expected a trace file argument");
  std::ifstream in(args.positional[0]);
  if (!in) throw std::runtime_error("cannot open " + args.positional[0]);
  return workload::BurstTrace::load(in);
}

std::unique_ptr<workload::BurstSource> make_source(const std::string& kind,
                                                   const BusConfig& cfg,
                                                   std::uint64_t seed,
                                                   const Args& args) {
  if (kind == "uniform") return workload::make_uniform_source(cfg, seed);
  if (kind == "biased")
    return workload::make_biased_source(cfg, args.get_double("p-one", 0.75),
                                        seed);
  if (kind == "sparse")
    return workload::make_sparse_source(cfg,
                                        args.get_double("p-zero", 0.7), seed);
  if (kind == "counter") return workload::make_counter_source(cfg, seed, 1);
  if (kind == "gray") return workload::make_gray_counter_source(cfg, seed);
  if (kind == "walking-ones") return workload::make_walking_ones_source(cfg);
  if (kind == "text") return workload::make_text_source(cfg, seed);
  if (kind == "float") return workload::make_float_source(cfg, seed);
  if (kind == "markov")
    return workload::make_markov_source(cfg,
                                        args.get_double("p-stay", 0.9), seed);
  if (kind == "framebuffer") return workload::make_framebuffer_source(cfg, seed);
  if (kind == "tensor") return workload::make_tensor_source(cfg, seed);
  throw std::runtime_error("unknown source: " + kind);
}

Scheme parse_scheme(const std::string& name) {
  if (name == "raw") return Scheme::kRaw;
  if (name == "dc") return Scheme::kDc;
  if (name == "ac") return Scheme::kAc;
  if (name == "acdc") return Scheme::kAcDc;
  if (name == "opt") return Scheme::kOpt;
  if (name == "opt-fixed") return Scheme::kOptFixed;
  throw std::runtime_error("unknown scheme: " + name +
                           " (raw|dc|ac|acdc|opt|opt-fixed)");
}

power::PodParams parse_pod(const Args& args) {
  const std::string pod = args.get("pod", "pod135");
  const double cload = args.get_double("cload-pf", 3.0) * 1e-12;
  const double rate = args.get_double("gbps", 12.0) * 1e9;
  if (pod == "pod135") return power::PodParams::pod135(cload, rate);
  if (pod == "pod12") return power::PodParams::pod12(cload, rate);
  if (pod == "pod15") return power::PodParams::pod15(cload, rate);
  throw std::runtime_error("unknown pod preset: " + pod);
}

int cmd_gen(const Args& args) {
  BusConfig cfg;
  cfg.width = static_cast<int>(args.get_long("width", 8));
  cfg.burst_length = static_cast<int>(args.get_long("bl", 8));
  const auto bursts = args.get_long("bursts", 1000);
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  auto source = make_source(args.get("source", "uniform"), cfg, seed, args);
  const auto trace = workload::BurstTrace::collect(*source, bursts);

  const std::string out = args.get("output", "");
  if (out.empty()) {
    trace.save(std::cout);
  } else {
    std::ofstream os(out);
    if (!os) throw std::runtime_error("cannot write " + out);
    trace.save(os);
    std::cerr << "wrote " << trace.size() << " bursts (" << source->name()
              << ") to " << out << "\n";
  }
  return 0;
}

int cmd_stats(const Args& args) {
  const auto trace = load_trace(args);
  const auto s = trace.stats();
  sim::Table table({"metric", "value"});
  table.add_row({"bursts", std::to_string(s.bursts)});
  table.add_row({"payload bits", std::to_string(s.payload_bits)});
  table.add_row({"payload zeros", std::to_string(s.payload_zeros)});
  table.add_row({"zero fraction", sim::fmt(s.zero_fraction(), 4)});
  table.add_row({"raw transitions", std::to_string(s.raw_transitions)});
  emit(table, args);
  return 0;
}

int cmd_encode(const Args& args) {
  const auto trace = load_trace(args);
  const double alpha = args.get_double("alpha", 0.5);
  const CostWeights w = CostWeights::ac_dc_tradeoff(alpha);

  sim::Table table({"scheme", "zeros/burst", "transitions/burst",
                    "cost/burst"});
  const std::vector<std::string> names =
      args.options.count("scheme")
          ? std::vector<std::string>{args.get("scheme", "opt")}
          : std::vector<std::string>{"raw", "dc", "ac", "opt-fixed", "opt"};
  for (const std::string& name : names) {
    const auto encoder = make_encoder(parse_scheme(name), w);
    const sim::MeanStats m = sim::mean_stats(trace, *encoder);
    table.add_row({std::string(encoder->name()), sim::fmt(m.zeros, 3),
                   sim::fmt(m.transitions, 3),
                   sim::fmt(w.alpha * m.transitions + w.beta * m.zeros, 3)});
  }
  emit(table, args);
  return 0;
}

int cmd_sweep(const Args& args) {
  const auto trace = load_trace(args);
  const auto steps = static_cast<int>(args.get_long("steps", 21));
  const auto sweep = sim::alpha_sweep(trace, steps);
  sim::Table table({"ac_cost", "raw", "dc", "ac", "acdc", "opt",
                    "opt_fixed"});
  for (const auto& p : sweep)
    table.add_row({sim::fmt(p.ac_cost, 3), sim::fmt(p.raw, 3),
                   sim::fmt(p.dc, 3), sim::fmt(p.ac, 3),
                   sim::fmt(p.acdc, 3), sim::fmt(p.opt, 3),
                   sim::fmt(p.opt_fixed, 3)});
  emit(table, args);
  return 0;
}

int cmd_rates(const Args& args) {
  const auto trace = load_trace(args);
  const power::PodParams pod = parse_pod(args);
  std::vector<double> rates;
  const double lo = args.get_double("from-gbps", 1.0);
  const double hi = args.get_double("to-gbps", 20.0);
  const double step = args.get_double("step-gbps", 1.0);
  for (double g = lo; g <= hi + 1e-9; g += step) rates.push_back(g);
  const auto sweep = sim::datarate_sweep(pod, trace, rates);
  sim::Table table({"gbps", "raw_pj", "dc", "ac", "opt", "opt_fixed"});
  for (const auto& p : sweep)
    table.add_row({sim::fmt(p.gbps, 2), sim::fmt(p.raw_pj, 2),
                   sim::fmt(p.dc, 4), sim::fmt(p.ac, 4),
                   sim::fmt(p.opt, 4), sim::fmt(p.opt_fixed, 4)});
  emit(table, args);
  return 0;
}

int cmd_synth(const Args& args) {
  const auto bytes = static_cast<int>(args.get_long("bytes", 8));
  BusConfig cfg;
  cfg.burst_length = bytes;
  auto src = workload::make_uniform_source(cfg, 1);
  const auto trace = workload::BurstTrace::collect(
      *src, args.get_long("bursts", 1000));
  hw::Table1Options options;
  options.bytes = bytes;
  const auto rows = hw::table1_synthesis(trace, options);
  sim::Table table({"scheme", "cells", "area_um2", "static_uw",
                    "dynamic_uw", "burst_rate_ghz", "fmax_ghz", "total_uw",
                    "energy_per_burst_pj"});
  for (const auto& r : rows)
    table.add_row({r.scheme, std::to_string(r.cells),
                   sim::fmt(r.area_um2, 1), sim::fmt(r.static_uw, 1),
                   sim::fmt(r.dynamic_uw, 1),
                   sim::fmt(r.burst_rate_ghz, 3), sim::fmt(r.fmax_ghz, 3),
                   sim::fmt(r.total_uw, 1),
                   sim::fmt(r.energy_per_burst_pj, 3)});
  emit(table, args);
  return 0;
}

int cmd_pareto(const Args& args) {
  // Positional arguments: 8 hex bytes (defaults to the Fig. 2 burst).
  BusConfig cfg{8, 8};
  Burst data = sim::paper_example_burst();
  if (!args.positional.empty()) {
    if (args.positional.size() != 8)
      throw std::runtime_error("pareto expects exactly 8 hex bytes");
    std::vector<Word> words;
    for (const std::string& tok : args.positional) {
      const long v = std::stol(tok, nullptr, 16);
      if (v < 0 || v > 0xFF) throw std::runtime_error("bytes are 00..ff");
      words.push_back(static_cast<Word>(v));
    }
    data = Burst(cfg, words);
  }
  const BusState prev = BusState::all_ones(cfg);
  sim::Table table({"zeros", "transitions", "invert_mask"});
  for (const ParetoPoint& p : pareto_frontier(data, prev)) {
    std::ostringstream mask;
    mask << "0x" << std::hex << p.invert_mask;
    table.add_row({std::to_string(p.zeros), std::to_string(p.transitions),
                   mask.str()});
  }
  emit(table, args);
  return 0;
}

int cmd_faults(const Args& args) {
  BusConfig cfg{8, 8};
  auto src = workload::make_uniform_source(
      cfg, static_cast<std::uint64_t>(args.get_long("seed", 1)));
  const auto trace = workload::BurstTrace::collect(
      *src, args.get_long("bursts", 64));
  hw::FaultStudyOptions options;
  options.max_sites = static_cast<int>(args.get_long("sites", 300));
  options.bursts_per_fault =
      static_cast<int>(args.get_long("bursts-per-fault", 24));
  const hw::FaultStudyResult r = hw::run_fault_study(trace, options);
  sim::Table table({"effect", "sites"});
  table.add_row({"benign", std::to_string(r.benign)});
  table.add_row({"suboptimal", std::to_string(r.suboptimal)});
  table.add_row({"corrupting", std::to_string(r.corrupting)});
  table.add_row({"worst_cost_increase",
                 sim::fmt(100.0 * r.worst_cost_increase, 2) + " %"});
  emit(table, args);
  return 0;
}

int cmd_verilog(const Args& args) {
  const std::string name = args.get("design", "opt-fixed");
  hw::HwDesign design;
  if (name == "dc")
    design = hw::build_dbi_dc();
  else if (name == "ac")
    design = hw::build_dbi_ac();
  else if (name == "opt-fixed")
    design = hw::build_dbi_opt_fixed();
  else if (name == "opt-3bit")
    design = hw::build_dbi_opt_3bit();
  else if (name == "decoder")
    design = hw::build_dbi_decoder();
  else
    throw std::runtime_error(
        "unknown design (dc|ac|opt-fixed|opt-3bit|decoder)");

  const std::string module = "dbi_" + name;
  const std::string out = args.get("output", "");
  if (out.empty()) {
    netlist::write_verilog(std::cout, design.net, module);
  } else {
    std::ofstream os(out);
    if (!os) throw std::runtime_error("cannot write " + out);
    netlist::write_verilog(os, design.net, module);
    std::cerr << "wrote " << design.net.physical_gates() << "-cell module "
              << module << " to " << out << "\n";
  }
  return 0;
}

int usage() {
  std::cerr <<
      "dbitool — optimal DC/AC data bus inversion toolkit\n"
      "\n"
      "usage:\n"
      "  dbitool gen     --source KIND --bursts N --seed S [--width 8]\n"
      "                  [--bl 8] [-o trace.txt]\n"
      "          KIND: uniform|biased|sparse|counter|gray|walking-ones|\n"
      "                text|float|markov\n"
      "  dbitool stats   TRACE [--csv]\n"
      "  dbitool encode  TRACE [--scheme raw|dc|ac|acdc|opt|opt-fixed]\n"
      "                  [--alpha 0.5] [--csv]\n"
      "  dbitool sweep   TRACE [--steps 21] [--csv]        (Fig. 3/4)\n"
      "  dbitool rates   TRACE [--pod pod135|pod12|pod15]\n"
      "                  [--cload-pf 3] [--from-gbps 1] [--to-gbps 20]\n"
      "                  [--step-gbps 1] [--csv]           (Fig. 7)\n"
      "  dbitool synth   [--bytes 8] [--bursts 1000] [--csv] (Table I)\n"
      "  dbitool pareto  [B0 B1 ... B7]  (hex bytes; default: Fig. 2)\n"
      "  dbitool faults  [--sites 300] [--bursts-per-fault 24] [--csv]\n"
      "  dbitool verilog [--design dc|ac|opt-fixed|opt-3bit|decoder]\n"
      "                  [-o out.v]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.command == "gen") return cmd_gen(args);
    if (args.command == "stats") return cmd_stats(args);
    if (args.command == "encode") return cmd_encode(args);
    if (args.command == "sweep") return cmd_sweep(args);
    if (args.command == "rates") return cmd_rates(args);
    if (args.command == "synth") return cmd_synth(args);
    if (args.command == "pareto") return cmd_pareto(args);
    if (args.command == "faults") return cmd_faults(args);
    if (args.command == "verilog") return cmd_verilog(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "dbitool: " << e.what() << "\n";
    return 1;
  }
}
