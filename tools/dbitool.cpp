// dbitool — command-line front end to the dbicodec library.
//
//   dbitool gen     --source uniform --bursts 1000 --seed 1 -o trace.txt
//   dbitool stats   trace.txt
//   dbitool encode  trace.txt --scheme opt --alpha 0.56 [--csv]
//   dbitool sweep   trace.txt --steps 21 [--csv]
//   dbitool rates   trace.txt --pod pod135 --cload-pf 3 [--csv]
//   dbitool synth   [--bytes 8]
//   dbitool verilog --design opt-fixed -o encoder.v
//   dbitool record  --corpus float-tensor --bursts 1000000 -o t.dbt
//   dbitool replay  t.dbt --lanes 8 --workers 4
//   dbitool inspect t.dbt
//   dbitool convert trace.txt trace.dbt   (direction by sniffing)
//
// Every subcommand prints an aligned table (or CSV with --csv) so the
// tool slots into shell pipelines and plotting scripts.
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "api/kernels.hpp"
#include "api/session.hpp"
#include "api/verify.hpp"
#include "api/version.hpp"
#include "core/encoder.hpp"
#include "core/pareto.hpp"
#include "engine/kernel_registry.hpp"
#include "engine/shard_pool.hpp"
#include "hw/fault_study.hpp"
#include "hw/hw_design.hpp"
#include "hw/synthesis.hpp"
#include "lake/lake.hpp"
#include "lake/sweep.hpp"
#include "netlist/export.hpp"
#include "obs/json.hpp"
#include "obs/observer.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "power/interface_energy.hpp"
#include "sim/experiments.hpp"
#include "sim/table.hpp"
#include "trace/convert.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"
#include "workload/corpus.hpp"
#include "workload/generators.hpp"
#include "workload/trace.hpp"

namespace {

using namespace dbi;

/// A bad invocation distinct from bad data: reported like an unknown
/// flag (message + usage on stderr, exit 64 / EX_USAGE), so scripts can
/// tell a typo'd kernel name from a runtime failure.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Transient server-side rejection (a kBusy frame): exit 75
/// (EX_TEMPFAIL), so scripts can tell backpressure from hard failures
/// and retry.
struct TempFailError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  bool csv = false;
  std::string missing_value_flag;  ///< "--key" with no value following

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = options.find(key);
    return it != options.end() ? it->second : fallback;
  }
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = options.find(key);
    return it != options.end() ? std::stod(it->second) : fallback;
  }
  [[nodiscard]] long get_long(const std::string& key, long fallback) const {
    const auto it = options.find(key);
    return it != options.end() ? std::stol(it->second) : fallback;
  }
};

Args parse_args(int argc, char** argv) {
  // Flags that take no value; everything else spelled --key expects one.
  static const std::set<std::string> kBoolFlags = {
      "no-compress", "no-double-buffer", "wide",     "reset",
      "json",        "fork",             "verify",   "stats",
      "shutdown",    "decode"};
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token == "--csv") {
      args.csv = true;
    } else if (token.rfind("--", 0) == 0 &&
               kBoolFlags.count(token.substr(2)) != 0) {
      args.options[token.substr(2)] = "1";
    } else if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (i + 1 >= argc) {
        // Defer the error: an *unknown* trailing flag must still get
        // the named exit-64 treatment, not a generic runtime error.
        args.options[key] = "";
        args.missing_value_flag = key;
      } else {
        args.options[key] = argv[++i];
      }
    } else if (token == "-o") {
      if (i + 1 >= argc) throw std::runtime_error("missing value for -o");
      args.options["output"] = argv[++i];
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

/// Flags each subcommand accepts (keys as stored in Args::options; -o
/// lands under "output", --csv is global). Anything else is an unknown
/// flag: named on stderr with exit 64 (EX_USAGE), like unknown
/// commands, so scripts can tell typos from bad data.
const std::map<std::string, std::set<std::string>>& allowed_flags() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"gen", {"source", "bursts", "seed", "width", "bl", "output", "p-one",
               "p-zero", "p-stay"}},
      {"stats", {}},
      {"encode", {"scheme", "alpha"}},
      {"sweep", {"steps", "schemes", "select", "cost", "alpha", "lanes",
                 "workers", "pod", "cload-pf", "gbps", "cells", "output"}},
      {"lake", {"json"}},
      {"rates", {"pod", "cload-pf", "gbps", "from-gbps", "to-gbps",
                 "step-gbps"}},
      {"synth", {"bytes", "bursts"}},
      {"pareto", {}},
      {"faults", {"seed", "bursts", "sites", "bursts-per-fault"}},
      {"verilog", {"design", "output"}},
      {"record", {"corpus", "source", "bursts", "seed", "width", "bl",
                  "chunk", "no-compress", "wide", "output", "p-one", "p-zero",
                  "p-stay", "encode", "alpha", "lanes", "reset", "kernel",
                  "metrics", "trace-json", "select", "cost", "report"}},
      {"replay", {"scheme", "alpha", "lanes", "workers", "no-double-buffer",
                  "pod", "cload-pf", "gbps", "kernel", "metrics",
                  "trace-json", "select", "cost", "report"}},
      {"inspect", {"json"}},
      {"convert", {"chunk", "no-compress"}},
      {"corpus", {"width", "bl", "bursts", "seed", "select", "cost"}},
      {"decode", {"output", "workers", "chunk", "no-compress", "metrics",
                  "trace-json", "report"}},
      {"verify", {"scheme", "alpha", "lanes", "workers", "reset", "metrics",
                  "trace-json"}},
      {"kernels", {}},
      {"serve", {"socket", "workers", "queue", "quantum", "batch", "fork",
                 "pidfile"}},
      {"client", {"socket", "tenant", "scheme", "alpha", "width", "bl",
                  "wide", "lanes", "reset", "kernel", "corpus", "source",
                  "bursts", "seed", "req-bursts", "chunk", "no-compress",
                  "output", "verify", "stats", "shutdown", "decode", "p-one",
                  "p-zero", "p-stay"}},
  };
  return kAllowed;
}

/// Returns the first unknown flag of the command, or empty.
std::string unknown_flag(const Args& args) {
  const auto it = allowed_flags().find(args.command);
  if (it == allowed_flags().end()) return {};  // unknown command: handled later
  for (const auto& [key, value] : args.options) {
    (void)value;
    if (it->second.count(key) == 0) return key;
  }
  return {};
}

void emit(const sim::Table& table, const Args& args) {
  if (args.csv)
    std::cout << table.to_csv();
  else
    std::cout << table;
}

workload::BurstTrace load_trace(const Args& args) {
  if (args.positional.empty())
    throw std::runtime_error("expected a trace file argument");
  std::ifstream in(args.positional[0]);
  if (!in) throw std::runtime_error("cannot open " + args.positional[0]);
  return workload::BurstTrace::load(in);
}

std::unique_ptr<workload::BurstSource> make_source(const std::string& kind,
                                                   const BusConfig& cfg,
                                                   std::uint64_t seed,
                                                   const Args& args) {
  if (kind == "uniform") return workload::make_uniform_source(cfg, seed);
  if (kind == "biased")
    return workload::make_biased_source(cfg, args.get_double("p-one", 0.75),
                                        seed);
  if (kind == "sparse")
    return workload::make_sparse_source(cfg,
                                        args.get_double("p-zero", 0.7), seed);
  if (kind == "counter") return workload::make_counter_source(cfg, seed, 1);
  if (kind == "gray") return workload::make_gray_counter_source(cfg, seed);
  if (kind == "walking-ones") return workload::make_walking_ones_source(cfg);
  if (kind == "text") return workload::make_text_source(cfg, seed);
  if (kind == "float") return workload::make_float_source(cfg, seed);
  if (kind == "markov")
    return workload::make_markov_source(cfg,
                                        args.get_double("p-stay", 0.9), seed);
  if (kind == "framebuffer") return workload::make_framebuffer_source(cfg, seed);
  if (kind == "tensor") return workload::make_tensor_source(cfg, seed);
  throw std::runtime_error("unknown source: " + kind);
}

Scheme parse_scheme(const std::string& name) {
  if (name == "raw") return Scheme::kRaw;
  if (name == "dc") return Scheme::kDc;
  if (name == "ac") return Scheme::kAc;
  if (name == "acdc") return Scheme::kAcDc;
  if (name == "opt") return Scheme::kOpt;
  if (name == "opt-fixed") return Scheme::kOptFixed;
  throw std::runtime_error("unknown scheme: " + name +
                           " (raw|dc|ac|acdc|opt|opt-fixed)");
}

CostModel parse_cost_model(const std::string& name) {
  if (name == "transitions") return CostModel::kTransitions;
  if (name == "energy") return CostModel::kEnergy;
  if (name == "bytes") return CostModel::kBytes;
  throw UsageError("unknown cost model '" + name +
                   "' (transitions|energy|bytes)");
}

/// --select exact[:dc,ac,...] / --select predict[:dc,ac,...] with an
/// optional --cost MODEL: an adaptive mixed-block SchemePolicy, or
/// nullopt when neither flag was given. A typo'd mode, scheme or cost
/// model is a usage error (exit 64), like an unknown flag.
std::optional<SchemePolicy> parse_select_policy(const Args& args) {
  if (args.options.count("select") == 0) {
    if (args.options.count("cost") != 0)
      throw UsageError("--cost only applies together with --select");
    return std::nullopt;
  }
  const std::string sel = args.get("select", "");
  std::string mode = sel;
  std::vector<Scheme> candidates;
  if (const auto colon = sel.find(':'); colon != std::string::npos) {
    mode = sel.substr(0, colon);
    std::stringstream list(sel.substr(colon + 1));
    std::string token;
    while (std::getline(list, token, ',')) {
      if (token.empty()) continue;
      try {
        candidates.push_back(parse_scheme(token));
      } catch (const std::exception& e) {
        throw UsageError("--select: " + std::string(e.what()));
      }
    }
  }
  if (candidates.empty()) candidates = SchemePolicy::default_candidates();
  const CostModel cost = parse_cost_model(args.get("cost", "transitions"));
  SchemePolicy policy;
  if (mode == "exact")
    policy = SchemePolicy::adaptive_exact(std::move(candidates), cost);
  else if (mode == "predict")
    policy = SchemePolicy::adaptive_predicted(std::move(candidates), cost);
  else
    throw UsageError("unknown --select mode '" + mode +
                     "' (exact[:dc,ac,...]|predict[:dc,ac,...])");
  try {
    policy.validate();
  } catch (const std::exception& e) {
    throw UsageError("--select: " + std::string(e.what()));
  }
  return policy;
}

/// --report FILE: the unified SessionReport JSON (policy, kernel
/// routing, adaptive selection outcome, metrics snapshot).
void write_report(const Session& session, const Args& args) {
  const std::string path = args.get("report", "");
  if (path.empty()) return;
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write " + path);
  os << session.report().to_json() << "\n";
}

power::PodParams parse_pod(const Args& args) {
  const std::string pod = args.get("pod", "pod135");
  const double cload = args.get_double("cload-pf", 3.0) * 1e-12;
  const double rate = args.get_double("gbps", 12.0) * 1e9;
  if (pod == "pod135") return power::PodParams::pod135(cload, rate);
  if (pod == "pod12") return power::PodParams::pod12(cload, rate);
  if (pod == "pod15") return power::PodParams::pod15(cload, rate);
  throw std::runtime_error("unknown pod preset: " + pod);
}

/// Shared geometry parsing for the subcommands that take a bus shape:
/// --width / --bl, with --wide (implied by width > 32) selecting the
/// multi-group arrangement (one DBI line per byte group).
Geometry parse_geometry(const Args& args, int default_width = 8) {
  const int width = static_cast<int>(args.get_long("width", default_width));
  const int bl = static_cast<int>(args.get_long("bl", 8));
  const bool wide = args.options.count("wide") != 0 || width > 32;
  const Geometry g =
      wide ? Geometry::wide(width, bl) : Geometry::narrow(width, bl);
  g.validate();
  return g;
}

/// The one SessionSpec producer every encode-path subcommand uses:
/// --scheme / --alpha / --lanes / --workers / --no-double-buffer over a
/// given geometry. `default_scheme` lets subcommands keep their
/// historical default.
SessionSpec session_spec(const Args& args, const Geometry& geometry,
                         const std::string& default_scheme = "opt") {
  SessionSpec spec;
  spec.policy = SchemePolicy::fixed(parse_scheme(args.get("scheme",
                                                          default_scheme)));
  spec.geometry = geometry;
  spec.weights =
      CostWeights::ac_dc_tradeoff(args.get_double("alpha", 0.5));
  spec.lanes = static_cast<int>(args.get_long("lanes", 1));
  spec.threads = static_cast<int>(args.get_long("workers", 0));
  spec.double_buffer = args.options.count("no-double-buffer") == 0;
  spec.kernel = args.get("kernel", "");
  // A typo'd kernel name is a usage error (exit 64, like an unknown
  // flag); an unavailable ISA or an envelope mismatch is left to the
  // Session to diagnose at runtime (exit 1).
  if (!spec.kernel.empty() && spec.kernel != "auto" &&
      engine::find_kernel(spec.kernel) == nullptr)
    throw UsageError("unknown kernel '" + spec.kernel +
                     "' (candidates: " + engine::kernel_candidates() + ")");
  spec.validate();
  return spec;
}

/// --metrics FILE / --trace-json FILE support shared by the engine
/// subcommands (record / replay / decode / verify): owns one
/// obs::Observer for the whole command — kCounters when only metrics
/// were asked for, kFull when a span trace was — so scheme sweeps
/// aggregate into a single registry / trace. finish() writes the
/// requested files: Prometheus text when the metrics path ends in
/// ".prom", the JSON snapshot otherwise, and Chrome trace_event JSON
/// for --trace-json.
struct ObsOutput {
  std::string metrics_path;
  std::string trace_path;
  std::unique_ptr<obs::Observer> observer;

  explicit ObsOutput(const Args& args)
      : metrics_path(args.get("metrics", "")),
        trace_path(args.get("trace-json", "")) {
    if (metrics_path.empty() && trace_path.empty()) return;
    obs::ObsConfig cfg;
    cfg.level = trace_path.empty() ? obs::ObsLevel::kCounters
                                   : obs::ObsLevel::kFull;
    observer = std::make_unique<obs::Observer>(cfg);
  }

  [[nodiscard]] obs::Observer* get() const { return observer.get(); }

  void apply(SessionSpec& spec) const {
    if (observer) spec.observer = observer.get();
  }

  /// Call once, after every session of the command has run.
  void finish() const {
    if (!observer) return;
    if (!metrics_path.empty()) {
      std::ofstream os(metrics_path);
      if (!os) throw std::runtime_error("cannot write " + metrics_path);
      if (metrics_path.size() >= 5 &&
          metrics_path.compare(metrics_path.size() - 5, 5, ".prom") == 0)
        observer->write_metrics_prometheus(os);
      else
        observer->write_metrics_json(os);
    }
    if (!trace_path.empty()) {
      std::ofstream os(trace_path);
      if (!os) throw std::runtime_error("cannot write " + trace_path);
      observer->write_trace_json(os);
    }
  }
};

/// `dbitool kernels`: the compiled-in kernel variants, their ISA
/// requirements, host availability and which one auto-selection picks
/// right now (the DBI_KERNEL environment override included).
int cmd_kernels(const Args& args) {
  sim::Table table({"kernel", "isa", "available", "selected", "envelope"});
  for (const KernelInfo& k : available_kernels())
    table.add_row({std::string(k.name), std::string(k.isa),
                   k.available ? "yes" : "no", k.selected ? "yes" : "no",
                   std::string(k.envelope)});
  emit(table, args);
  return 0;
}

int cmd_gen(const Args& args) {
  BusConfig cfg;
  cfg.width = static_cast<int>(args.get_long("width", 8));
  cfg.burst_length = static_cast<int>(args.get_long("bl", 8));
  const auto bursts = args.get_long("bursts", 1000);
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  auto source = make_source(args.get("source", "uniform"), cfg, seed, args);
  const auto trace = workload::BurstTrace::collect(*source, bursts);

  const std::string out = args.get("output", "");
  if (out.empty()) {
    trace.save(std::cout);
  } else {
    std::ofstream os(out);
    if (!os) throw std::runtime_error("cannot write " + out);
    trace.save(os);
    std::cerr << "wrote " << trace.size() << " bursts (" << source->name()
              << ") to " << out << "\n";
  }
  return 0;
}

/// Renders a `--metrics` JSON snapshot (as written by record / replay /
/// decode / verify) as the usual aligned table: counters and gauges one
/// row each, histograms as count / p50 / p90 / p99 / max.
int metrics_stats(const std::string& path, const Args& args) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const obs::json::Value doc = obs::json::parse(buffer.str());
  const obs::json::Value* metrics = doc.get("metrics");
  if (metrics == nullptr || !metrics->is_array())
    throw std::runtime_error(path + ": no \"metrics\" array (not a dbitool "
                                    "metrics snapshot?)");

  const auto fmt_num = [](double v) {
    // Counters are integral; print them without a fraction.
    if (v == static_cast<double>(static_cast<long long>(v)))
      return std::to_string(static_cast<long long>(v));
    return sim::fmt(v, 3);
  };
  sim::Table table({"metric", "type", "value", "p50", "p90", "p99", "max"});
  for (const obs::json::Value& m : metrics->array) {
    if (!m.is_object()) continue;
    std::string name(m.get_string("name"));
    const std::string_view labels = m.get_string("labels");
    if (!labels.empty()) {
      name += "{";
      name += labels;
      name += "}";
    }
    const std::string_view type = m.get_string("type");
    if (type == "histogram") {
      table.add_row({name, std::string(type),
                     fmt_num(m.get_number("count")),
                     fmt_num(m.get_number("p50")),
                     fmt_num(m.get_number("p90")),
                     fmt_num(m.get_number("p99")),
                     fmt_num(m.get_number("max"))});
    } else {
      table.add_row({name, std::string(type),
                     fmt_num(m.get_number("value")), "", "", "", ""});
    }
  }
  emit(table, args);
  return 0;
}

int cmd_stats(const Args& args) {
  // Sniff the argument: a metrics snapshot starts with '{', a burst
  // trace with its "dbi-trace" text header.
  if (!args.positional.empty()) {
    std::ifstream probe(args.positional[0]);
    if (!probe) throw std::runtime_error("cannot open " + args.positional[0]);
    char first = 0;
    probe >> std::ws >> first;
    if (first == '{') return metrics_stats(args.positional[0], args);
  }
  const auto trace = load_trace(args);
  const auto s = trace.stats();
  sim::Table table({"metric", "value"});
  table.add_row({"bursts", std::to_string(s.bursts)});
  table.add_row({"payload bits", std::to_string(s.payload_bits)});
  table.add_row({"payload zeros", std::to_string(s.payload_zeros)});
  table.add_row({"zero fraction", sim::fmt(s.zero_fraction(), 4)});
  table.add_row({"raw transitions", std::to_string(s.raw_transitions)});
  emit(table, args);
  return 0;
}

int cmd_encode(const Args& args) {
  const auto trace = load_trace(args);
  const double alpha = args.get_double("alpha", 0.5);
  const CostWeights w = CostWeights::ac_dc_tradeoff(alpha);

  sim::Table table({"scheme", "zeros/burst", "transitions/burst",
                    "cost/burst"});
  const std::vector<std::string> names =
      args.options.count("scheme")
          ? std::vector<std::string>{args.get("scheme", "opt")}
          : std::vector<std::string>{"raw", "dc", "ac", "opt-fixed", "opt"};
  for (const std::string& name : names) {
    const auto encoder = make_encoder(parse_scheme(name), w);
    const sim::MeanStats m = sim::mean_stats(trace, *encoder);
    table.add_row({std::string(encoder->name()), sim::fmt(m.zeros, 3),
                   sim::fmt(m.transitions, 3),
                   sim::fmt(w.alpha * m.transitions + w.beta * m.zeros, 3)});
  }
  emit(table, args);
  return 0;
}

[[nodiscard]] bool is_directory_path(const std::string& path) {
  struct ::stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/// `dbitool sweep LAKE_DIR`: the scenario-matrix campaign — policy
/// arms (--schemes slugs and/or one --select policy) x every lake
/// member, streamed out of the lake, one consolidated deterministic
/// JSON report. Resumable per cell with --cells DIR.
int cmd_lake_sweep(const Args& args) {
  if (args.options.count("steps") != 0)
    throw UsageError("sweep: --steps only applies to a text burst trace");
  const lake::LakeReader reader = lake::LakeReader::open(args.positional[0]);

  lake::SweepOptions opt;
  const CostWeights weights =
      CostWeights::ac_dc_tradeoff(args.get_double("alpha", 0.5));
  std::set<std::string> labels;
  std::stringstream list(args.get("schemes", "raw,dc,ac,acdc,opt-fixed,opt"));
  std::string token;
  while (std::getline(list, token, ',')) {
    if (token.empty()) continue;
    lake::SweepArm arm;
    arm.label = token;
    try {
      arm.policy = SchemePolicy::fixed(parse_scheme(token));
    } catch (const std::exception& e) {
      throw UsageError("sweep: --schemes: " + std::string(e.what()));
    }
    arm.weights = weights;
    if (!labels.insert(arm.label).second)
      throw UsageError("sweep: --schemes lists '" + token + "' twice");
    opt.arms.push_back(std::move(arm));
  }
  if (const std::optional<SchemePolicy> select = parse_select_policy(args)) {
    const std::string sel = args.get("select", "");
    lake::SweepArm arm;
    arm.label = "select-" + sel.substr(0, sel.find(':'));
    arm.policy = *select;
    arm.weights = weights;
    opt.arms.push_back(std::move(arm));
  }
  if (opt.arms.empty())
    throw UsageError("sweep: no arms (--schemes is empty and no --select)");
  opt.lanes = static_cast<int>(args.get_long("lanes", 1));
  opt.threads = static_cast<int>(args.get_long("workers", 0));
  opt.cells_dir = args.get("cells", "");
  std::optional<power::PodParams> pod;
  if (args.options.count("pod") != 0 || args.options.count("cload-pf") != 0 ||
      args.options.count("gbps") != 0) {
    pod = parse_pod(args);
    opt.pod = &*pod;
  }

  const std::string report = lake::run_sweep(reader, opt);
  const std::string out = args.get("output", "");
  if (out.empty()) {
    std::cout << report;
  } else {
    std::ofstream os(out, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("cannot write " + out);
    os << report;
    std::cerr << "swept " << opt.arms.size() << " arms x "
              << reader.members().size() << " members ("
              << reader.total_bursts() << " bursts) to " << out << "\n";
  }
  return 0;
}

int cmd_sweep(const Args& args) {
  // Sniff the positional: a directory is a trace lake (the campaign
  // runner), a file the classic alpha sweep over a text burst trace.
  if (!args.positional.empty() && is_directory_path(args.positional[0]))
    return cmd_lake_sweep(args);
  for (const char* f : {"schemes", "select", "cost", "alpha", "lanes",
                        "workers", "pod", "cload-pf", "gbps", "cells",
                        "output"})
    if (args.options.count(f) != 0)
      throw UsageError(std::string("sweep: --") + f +
                       " only applies to a lake directory");
  const auto trace = load_trace(args);
  const auto steps = static_cast<int>(args.get_long("steps", 21));
  const auto sweep = sim::alpha_sweep(trace, steps);
  sim::Table table({"ac_cost", "raw", "dc", "ac", "acdc", "opt",
                    "opt_fixed"});
  for (const auto& p : sweep)
    table.add_row({sim::fmt(p.ac_cost, 3), sim::fmt(p.raw, 3),
                   sim::fmt(p.dc, 3), sim::fmt(p.ac, 3),
                   sim::fmt(p.acdc, 3), sim::fmt(p.opt, 3),
                   sim::fmt(p.opt_fixed, 3)});
  emit(table, args);
  return 0;
}

int cmd_rates(const Args& args) {
  const auto trace = load_trace(args);
  const power::PodParams pod = parse_pod(args);
  std::vector<double> rates;
  const double lo = args.get_double("from-gbps", 1.0);
  const double hi = args.get_double("to-gbps", 20.0);
  const double step = args.get_double("step-gbps", 1.0);
  for (double g = lo; g <= hi + 1e-9; g += step) rates.push_back(g);
  const auto sweep = sim::datarate_sweep(pod, trace, rates);
  sim::Table table({"gbps", "raw_pj", "dc", "ac", "opt", "opt_fixed"});
  for (const auto& p : sweep)
    table.add_row({sim::fmt(p.gbps, 2), sim::fmt(p.raw_pj, 2),
                   sim::fmt(p.dc, 4), sim::fmt(p.ac, 4),
                   sim::fmt(p.opt, 4), sim::fmt(p.opt_fixed, 4)});
  emit(table, args);
  return 0;
}

int cmd_synth(const Args& args) {
  const auto bytes = static_cast<int>(args.get_long("bytes", 8));
  BusConfig cfg;
  cfg.burst_length = bytes;
  auto src = workload::make_uniform_source(cfg, 1);
  const auto trace = workload::BurstTrace::collect(
      *src, args.get_long("bursts", 1000));
  hw::Table1Options options;
  options.bytes = bytes;
  const auto rows = hw::table1_synthesis(trace, options);
  sim::Table table({"scheme", "cells", "area_um2", "static_uw",
                    "dynamic_uw", "burst_rate_ghz", "fmax_ghz", "total_uw",
                    "energy_per_burst_pj"});
  for (const auto& r : rows)
    table.add_row({r.scheme, std::to_string(r.cells),
                   sim::fmt(r.area_um2, 1), sim::fmt(r.static_uw, 1),
                   sim::fmt(r.dynamic_uw, 1),
                   sim::fmt(r.burst_rate_ghz, 3), sim::fmt(r.fmax_ghz, 3),
                   sim::fmt(r.total_uw, 1),
                   sim::fmt(r.energy_per_burst_pj, 3)});
  emit(table, args);
  return 0;
}

int cmd_pareto(const Args& args) {
  // Positional arguments: 8 hex bytes (defaults to the Fig. 2 burst).
  BusConfig cfg{8, 8};
  Burst data = sim::paper_example_burst();
  if (!args.positional.empty()) {
    if (args.positional.size() != 8)
      throw std::runtime_error("pareto expects exactly 8 hex bytes");
    std::vector<Word> words;
    for (const std::string& tok : args.positional) {
      const long v = std::stol(tok, nullptr, 16);
      if (v < 0 || v > 0xFF) throw std::runtime_error("bytes are 00..ff");
      words.push_back(static_cast<Word>(v));
    }
    data = Burst(cfg, words);
  }
  const BusState prev = BusState::all_ones(cfg);
  sim::Table table({"zeros", "transitions", "invert_mask"});
  for (const ParetoPoint& p : pareto_frontier(data, prev)) {
    std::ostringstream mask;
    mask << "0x" << std::hex << p.invert_mask;
    table.add_row({std::to_string(p.zeros), std::to_string(p.transitions),
                   mask.str()});
  }
  emit(table, args);
  return 0;
}

int cmd_faults(const Args& args) {
  BusConfig cfg{8, 8};
  auto src = workload::make_uniform_source(
      cfg, static_cast<std::uint64_t>(args.get_long("seed", 1)));
  const auto trace = workload::BurstTrace::collect(
      *src, args.get_long("bursts", 64));
  hw::FaultStudyOptions options;
  options.max_sites = static_cast<int>(args.get_long("sites", 300));
  options.bursts_per_fault =
      static_cast<int>(args.get_long("bursts-per-fault", 24));
  const hw::FaultStudyResult r = hw::run_fault_study(trace, options);
  sim::Table table({"effect", "sites"});
  table.add_row({"benign", std::to_string(r.benign)});
  table.add_row({"suboptimal", std::to_string(r.suboptimal)});
  table.add_row({"corrupting", std::to_string(r.corrupting)});
  table.add_row({"worst_cost_increase",
                 sim::fmt(100.0 * r.worst_cost_increase, 2) + " %"});
  emit(table, args);
  return 0;
}

int cmd_verilog(const Args& args) {
  const std::string name = args.get("design", "opt-fixed");
  hw::HwDesign design;
  if (name == "dc")
    design = hw::build_dbi_dc();
  else if (name == "ac")
    design = hw::build_dbi_ac();
  else if (name == "opt-fixed")
    design = hw::build_dbi_opt_fixed();
  else if (name == "opt-3bit")
    design = hw::build_dbi_opt_3bit();
  else if (name == "decoder")
    design = hw::build_dbi_decoder();
  else
    throw std::runtime_error(
        "unknown design (dc|ac|opt-fixed|opt-3bit|decoder)");

  const std::string module = "dbi_" + name;
  const std::string out = args.get("output", "");
  if (out.empty()) {
    netlist::write_verilog(std::cout, design.net, module);
  } else {
    std::ofstream os(out);
    if (!os) throw std::runtime_error("cannot write " + out);
    netlist::write_verilog(os, design.net, module);
    std::cerr << "wrote " << design.net.physical_gates() << "-cell module "
              << module << " to " << out << "\n";
  }
  return 0;
}

trace::TraceWriterOptions writer_options(const Args& args) {
  trace::TraceWriterOptions opt;
  const long chunk = args.get_long("chunk", 4096);
  if (chunk < 1 || chunk > 0xFFFFFFFFL)
    throw std::runtime_error("--chunk must be in [1, 4294967295]");
  opt.bursts_per_chunk = static_cast<std::uint32_t>(chunk);
  opt.compress = args.options.count("no-compress") == 0;
  return opt;
}

int cmd_record(const Args& args) {
  const Geometry geometry = parse_geometry(args);
  const auto bursts = args.get_long("bursts", 1000);
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  const std::string out = args.get("output", "");
  if (out.empty())
    throw std::runtime_error("record: -o OUTPUT.dbt is required");

  // Recording is the Session pipeline with a trace sink: the scenario
  // source streams packed bursts (wide geometry interleaves its byte
  // stream beat-major across the groups), the sink writes them through
  // the TraceWriter, and the RAW scheme keeps the pass stats-true
  // without altering the payload.
  std::unique_ptr<Source> source;
  std::string source_name;
  const BusConfig generator_cfg =
      geometry.is_wide() ? BusConfig{8, geometry.burst_length()}
                         : geometry.bus();
  if (args.options.count("corpus")) {
    source_name = args.get("corpus", "");
    source = dbi::make_corpus_source(source_name, bursts, seed);
  } else {
    auto generator =
        make_source(args.get("source", "uniform"), generator_cfg, seed, args);
    source_name = std::string(generator->name());
    source = dbi::make_generator_source(std::move(generator), bursts);
  }

  // Plain recording passes the payload through untouched (RAW scheme);
  // --encode SCHEME runs the real encoder and writes an ENCODED trace:
  // the transmitted stream plus the per-(burst, group) mask chunks,
  // with the scheme / lanes / state policy stamped into the header so
  // `decode` and `verify` are self-describing. --select replaces the
  // fixed scheme with adaptive mixed-block selection and records a
  // format-v3 trace whose chunks carry their own scheme tags.
  const std::optional<SchemePolicy> select = parse_select_policy(args);
  if (select && args.options.count("encode") != 0)
    throw UsageError(
        "record: --encode SCHEME and --select are mutually exclusive "
        "(adaptive selection picks the scheme per chunk)");
  const bool encode = args.options.count("encode") != 0 || select.has_value();
  const bool reset = args.options.count("reset") != 0;
  trace::TraceWriterOptions wopt = writer_options(args);
  SessionSpec spec = session_spec(args, geometry, "raw");
  spec.policy = Scheme::kRaw;  // plain record never re-encodes the payload
  if (encode) {
    if (select) {
      spec.policy = *select;
      wopt.per_chunk_schemes = true;  // format v3: chunk-tagged schemes
    } else {
      spec.policy = parse_scheme(args.get("encode", "ac"));
      wopt.enc_scheme = scheme_to_tag(spec.policy.fixed_scheme());
    }
    spec.state_policy =
        reset ? StatePolicy::kResetPerBurst : StatePolicy::kThread;
    // The header stores the lane interleave as a u16; silently
    // truncating 65536 -> 0 would make verify fall back to lanes=1 and
    // reject a perfectly valid trace.
    if (spec.lanes > 0xFFFF)
      throw std::runtime_error(
          "record --encode: --lanes must be <= 65535 (stored in the "
          "trace header)");
    wopt.encoded = true;
    wopt.enc_lanes = static_cast<std::uint16_t>(spec.lanes);
    wopt.enc_policy = reset ? 1 : 0;
  }

  std::unique_ptr<trace::TraceWriter> writer;
  if (geometry.is_wide())
    writer = std::make_unique<trace::TraceWriter>(out, geometry.wide_bus(),
                                                  wopt);
  else
    writer = std::make_unique<trace::TraceWriter>(out, geometry.bus(), wopt);
  const auto sink = encode ? dbi::make_encoded_trace_sink(*writer)
                           : dbi::make_trace_sink(*writer);

  const ObsOutput obs(args);
  obs.apply(spec);
  Session session(spec);
  (void)session.run(*source, *sink);
  obs.finish();
  write_report(session, args);

  std::cerr << "recorded " << writer->bursts_written() << " "
            << geometry.to_string() << " bursts (" << source_name << ")"
            << (encode ? " encoded with " +
                             (select ? select->describe()
                                     : std::string(session.scheme_name()))
                       : std::string())
            << " to " << out << "\n";
  return 0;
}

int cmd_decode(const Args& args) {
  if (args.positional.empty())
    throw std::runtime_error("decode: expected an encoded binary trace file");
  const auto reader = trace::TraceReader::open(args.positional[0]);
  if (!reader.encoded())
    throw std::runtime_error(
        "decode: " + args.positional[0] +
        " carries no mask stream (already a payload trace)");
  const std::string out = args.get("output", "");
  if (out.empty()) throw std::runtime_error("decode: -o OUTPUT.dbt is required");

  const Geometry geometry = reader.wide()
                                ? Geometry::of(reader.header().wide_config())
                                : Geometry::of(reader.config());
  std::unique_ptr<trace::TraceWriter> writer;
  if (geometry.is_wide())
    writer = std::make_unique<trace::TraceWriter>(out, geometry.wide_bus(),
                                                  writer_options(args));
  else
    writer = std::make_unique<trace::TraceWriter>(out, geometry.bus(),
                                                  writer_options(args));

  SessionSpec spec;
  spec.direction = Direction::kDecode;
  spec.geometry = geometry;
  spec.threads = static_cast<int>(args.get_long("workers", 0));
  const ObsOutput obs(args);
  obs.apply(spec);
  Session session(spec);
  const auto source = dbi::make_trace_source(reader);
  const auto sink = dbi::make_trace_sink(*writer);
  const StreamStats totals = session.run(*source, *sink);
  obs.finish();
  write_report(session, args);

  std::cerr << "decoded " << totals.bursts << " " << geometry.to_string()
            << " bursts to " << out << "\n";
  return 0;
}

int cmd_verify(const Args& args) {
  if (args.positional.empty())
    throw std::runtime_error("verify: expected a binary trace file");
  const auto reader = trace::TraceReader::open(args.positional[0]);
  const Geometry geometry = reader.wide()
                                ? Geometry::of(reader.header().wide_config())
                                : Geometry::of(reader.config());

  const ObsOutput obs(args);
  VerifyReport report;
  std::string mode;
  std::string scheme_name;
  if (reader.encoded()) {
    // Decode the transmitted stream, re-encode it and hold the
    // re-derived DBI decisions against the stored mask stream: catches
    // corrupted / misaligned masks (data-DBI coherence violations).
    mode = "encoded trace (mask coherence)";
    VerifyOptions opt;
    if (args.options.count("scheme"))
      opt.scheme = parse_scheme(args.get("scheme", "ac"));
    opt.weights = CostWeights::ac_dc_tradeoff(args.get_double("alpha", 0.5));
    if (args.options.count("lanes"))
      opt.lanes = static_cast<int>(args.get_long("lanes", 1));
    if (args.options.count("reset")) opt.reset_per_burst = true;
    opt.threads = static_cast<int>(args.get_long("workers", 0));
    opt.obs = obs.get();
    report = verify_encoded_trace(reader, opt);
    if (reader.header().mixed()) {
      scheme_name = "mixed (per-chunk tags)";
    } else {
      const auto scheme =
          opt.scheme ? opt.scheme
                     : scheme_from_tag(reader.header().enc_scheme);
      scheme_name = scheme ? std::string(dbi::scheme_name(*scheme)) : "?";
    }
  } else {
    // Payload trace: engine-speed end-to-end round trip — encode,
    // materialise the wire, decode, compare bit-exactly.
    mode = "payload trace (encode -> decode round trip)";
    SessionSpec spec = session_spec(args, geometry, "opt");
    spec.direction = Direction::kRoundTrip;
    if (args.options.count("reset"))
      spec.state_policy = StatePolicy::kResetPerBurst;
    obs.apply(spec);
    Session session(spec);
    const auto source = dbi::make_trace_source(reader);
    (void)session.run(*source);
    report = session.verify_report();
    scheme_name = std::string(session.scheme_name());
  }
  obs.finish();

  sim::Table table({"field", "value"});
  table.add_row({"mode", mode});
  table.add_row({"scheme", scheme_name});
  table.add_row({"bursts", std::to_string(report.bursts)});
  table.add_row({"mismatched units", std::to_string(report.mismatched_units)});
  table.add_row({"mismatched beats", std::to_string(report.mismatched_beats)});
  table.add_row({"verdict", report.ok() ? "bit-exact" : "MISMATCH"});
  for (std::size_t i = 0; i < report.sites.size() && i < 8; ++i) {
    const MismatchSite& s = report.sites[i];
    std::ostringstream where;
    where << "burst " << s.burst << " lane " << s.lane << " group "
          << s.group << " beats 0x" << std::hex << s.beat_mask;
    table.add_row({"site " + std::to_string(i), where.str()});
  }
  emit(table, args);
  return report.ok() ? 0 : 1;
}

int cmd_replay(const Args& args) {
  if (args.positional.empty())
    throw std::runtime_error("replay: expected a binary trace file");
  const auto reader = trace::TraceReader::open(args.positional[0]);
  const Geometry geometry = reader.wide()
                                ? Geometry::of(reader.header().wide_config())
                                : Geometry::of(reader.config());

  const power::PodParams pod = parse_pod(args);
  const std::optional<SchemePolicy> select = parse_select_policy(args);
  if (select && args.options.count("scheme") != 0)
    throw UsageError("replay: --scheme and --select are mutually exclusive");
  SessionSpec spec = session_spec(args, geometry);
  spec.lanes = static_cast<int>(args.get_long("lanes", 4));
  spec.threads = static_cast<int>(
      args.get_long("workers", engine::ShardPool::default_workers()));
  // One observer across the whole scheme sweep: the metrics file and
  // trace aggregate every scheme's run.
  const ObsOutput obs(args);
  obs.apply(spec);

  sim::Table table({"scheme", "zeros/burst", "transitions/burst",
                    "interface_pj/burst"});
  const std::vector<std::string> names =
      select ? std::vector<std::string>{"adaptive"}
      : args.options.count("scheme")
          ? std::vector<std::string>{args.get("scheme", "opt")}
          : std::vector<std::string>{"raw", "dc", "ac", "acdc", "opt-fixed",
                                     "opt"};
  std::unique_ptr<Session> session;
  for (const std::string& name : names) {
    if (select)
      spec.policy = *select;
    else
      spec.policy = parse_scheme(name);
    session = std::make_unique<Session>(spec);
    const auto source = dbi::make_trace_source(reader);
    const StreamStats totals = session->run(*source);
    const sim::ReplaySummary s = sim::summarize_replay(totals, &pod);
    table.add_row({select ? select->describe()
                          : std::string(session->scheme_name()),
                   sim::fmt(s.zeros, 3), sim::fmt(s.transitions, 3),
                   sim::fmt(s.interface_pj, 4)});
  }
  obs.finish();
  // With a scheme sweep the report reflects the last session (the
  // shared observer aggregates the metrics of every run).
  if (session) write_report(*session, args);
  emit(table, args);
  return 0;
}

int cmd_inspect(const Args& args) {
  if (args.positional.empty())
    throw std::runtime_error("inspect: expected a binary trace file");
  const auto reader = trace::TraceReader::open(args.positional[0]);
  const auto& s = reader.stats();

  std::size_t compressed_chunks = 0;
  std::uint64_t payload_on_disk = 0;
  for (std::size_t c = 0; c < reader.chunk_count(); ++c) {
    compressed_chunks += reader.chunk(c).compressed() ? 1 : 0;
    payload_on_disk += reader.chunk(c).payload_bytes;
  }
  const std::uint64_t payload_raw =
      static_cast<std::uint64_t>(s.bursts) *
      static_cast<std::uint64_t>(reader.header().bytes_per_burst());

  const int groups =
      reader.wide() ? reader.header().wide_config().groups() : 1;

  if (args.options.count("json") != 0) {
    // Machine-readable metadata: stable key names, numbers unquoted,
    // `encoded` null for plain payload traces.
    const auto esc = [](std::string_view s) {
      std::string out;
      for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
          continue;
        }
        out += c;
      }
      return out;
    };
    std::ostringstream os;
    os << "{\n"
       << "  \"file\": \"" << esc(args.positional[0]) << "\",\n"
       << "  \"format\": \"dbt2\",\n"
       << "  \"wide\": " << (reader.wide() ? "true" : "false") << ",\n";
    if (reader.encoded()) {
      const auto scheme = scheme_from_tag(reader.header().enc_scheme);
      os << "  \"encoded\": {\"scheme\": \""
         << (reader.header().mixed()
                 ? std::string("mixed")
                 : scheme ? esc(dbi::scheme_name(*scheme)) : std::string("?"))
         << "\", \"lanes\": " << reader.header().enc_lanes
         << ", \"reset_per_burst\": "
         << (reader.header().enc_policy ? "true" : "false") << "},\n";
    } else {
      os << "  \"encoded\": null,\n";
    }
    os << "  \"width\": " << reader.config().width << ",\n"
       << "  \"groups\": " << groups << ",\n"
       << "  \"burst_length\": " << reader.config().burst_length << ",\n"
       << "  \"bursts\": " << s.bursts << ",\n"
       << "  \"chunks\": " << reader.chunk_count() << ",\n"
       << "  \"compressed_chunks\": " << compressed_chunks << ",\n"
       << "  \"file_bytes\": " << reader.file_bytes() << ",\n"
       << "  \"payload_bytes\": " << payload_on_disk << ",\n"
       << "  \"payload_raw_bytes\": " << payload_raw << ",\n"
       << "  \"compression\": "
       << (payload_raw > 0
               ? sim::fmt(static_cast<double>(payload_on_disk) /
                              static_cast<double>(payload_raw),
                          3)
               : std::string("null"))
       << ",\n"
       << "  \"payload_zeros\": " << s.payload_zeros << ",\n"
       << "  \"zero_fraction\": " << sim::fmt(s.zero_fraction(), 4) << ",\n"
       << "  \"raw_transitions\": " << s.raw_transitions << ",\n"
       << "  \"crc\": \"ok\"\n"
       << "}\n";
    std::cout << os.str();
    return 0;
  }

  sim::Table table({"field", "value"});
  const std::string format_name =
      "dbi-trace binary v" +
      std::to_string(static_cast<int>(reader.header().version));
  table.add_row({"format", reader.wide()
                               ? format_name + " (wide multi-group)"
                               : format_name});
  if (reader.encoded()) {
    const auto scheme = scheme_from_tag(reader.header().enc_scheme);
    table.add_row(
        {"encoded",
         (reader.header().mixed()
              ? std::string("mixed (per-chunk scheme tags)")
              : scheme ? std::string(dbi::scheme_name(*scheme)) : "yes") +
             ", lanes " + std::to_string(reader.header().enc_lanes) +
             (reader.header().enc_policy ? ", reset per burst"
                                         : ", threaded state")});
  }
  table.add_row({"width", std::to_string(reader.config().width)});
  table.add_row({"dbi groups", std::to_string(groups)});
  table.add_row({"burst length",
                 std::to_string(reader.config().burst_length)});
  table.add_row({"bursts", std::to_string(s.bursts)});
  table.add_row({"chunks", std::to_string(reader.chunk_count())});
  table.add_row({"compressed chunks", std::to_string(compressed_chunks)});
  table.add_row({"file bytes", std::to_string(reader.file_bytes())});
  table.add_row({"payload bytes", std::to_string(payload_on_disk)});
  table.add_row(
      {"compression",
       payload_raw > 0
           ? sim::fmt(static_cast<double>(payload_on_disk) /
                          static_cast<double>(payload_raw),
                      3) + "x"
           : "n/a"});
  table.add_row({"payload zeros", std::to_string(s.payload_zeros)});
  table.add_row({"zero fraction", sim::fmt(s.zero_fraction(), 4)});
  table.add_row({"raw transitions", std::to_string(s.raw_transitions)});
  table.add_row({"crc", "ok"});
  emit(table, args);
  return 0;
}

int cmd_convert(const Args& args) {
  if (args.positional.size() != 2)
    throw std::runtime_error("convert: expected INPUT and OUTPUT files");
  const std::string& in_path = args.positional[0];
  const std::string& out_path = args.positional[1];

  // Sniff the input: v2 binary starts with "DBT2", v1 text with
  // "dbi-trace".
  std::ifstream probe(in_path, std::ios::binary);
  if (!probe) throw std::runtime_error("cannot open " + in_path);
  char magic[4] = {};
  probe.read(magic, 4);
  probe.close();

  if (std::string_view(magic, 4) == "DBT2") {
    const auto reader = trace::TraceReader::open(in_path);
    std::ofstream out(out_path);
    if (!out) throw std::runtime_error("cannot write " + out_path);
    trace::binary_to_text(reader, out);
    std::cerr << "converted " << reader.bursts() << " bursts to text "
              << out_path << "\n";
  } else {
    std::ifstream in(in_path);
    if (!in) throw std::runtime_error("cannot open " + in_path);
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write " + out_path);
    const workload::TraceStats s =
        trace::text_to_binary(in, out, writer_options(args));
    std::cerr << "converted " << s.bursts << " bursts to binary " << out_path
              << "\n";
  }
  return 0;
}

int cmd_corpus(const Args& args) {
  // Plain listing without --width; with --width, sample every scenario
  // at that wide geometry and report its payload statistics plus the
  // Session-encoded AC transition rate (one DBI per byte group).
  // --select adds an adaptive mixed-block column next to the fixed AC
  // baseline.
  const std::optional<SchemePolicy> select = parse_select_policy(args);
  if (args.options.count("width") == 0) {
    if (select)
      throw UsageError("corpus: --select requires --width (the sweep mode)");
    sim::Table table({"scenario", "description"});
    for (const workload::CorpusScenario& s : workload::corpus_scenarios())
      table.add_row({std::string(s.name), std::string(s.description)});
    emit(table, args);
    return 0;
  }

  const Geometry geometry =
      Geometry::wide(static_cast<int>(args.get_long("width", 32)),
                     static_cast<int>(args.get_long("bl", 8)));
  geometry.validate();
  const auto bursts = args.get_long("bursts", 4096);
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 1));

  SessionSpec raw_spec = session_spec(args, geometry, "raw");
  raw_spec.policy = Scheme::kRaw;
  SessionSpec ac_spec = raw_spec;
  ac_spec.policy = Scheme::kAc;
  Session raw(raw_spec);
  Session ac(ac_spec);
  std::unique_ptr<Session> sel;
  if (select) {
    SessionSpec sel_spec = raw_spec;
    sel_spec.policy = *select;
    sel = std::make_unique<Session>(sel_spec);
  }

  std::vector<std::string> columns = {"scenario", "zero_frac",
                                      "raw_trans/burst", "ac_trans/burst",
                                      "ac_saving"};
  if (select) {
    columns.push_back("sel_trans/burst");
    columns.push_back("sel_saving");
  }
  sim::Table table(columns);
  for (const workload::CorpusScenario& s : workload::corpus_scenarios()) {
    // Both schemes must see identical data, and corpus sources reseed
    // per bind(), so each run pulls a fresh, identical stream.
    auto raw_source = dbi::make_corpus_source(std::string(s.name), bursts,
                                              seed);
    auto ac_source = dbi::make_corpus_source(std::string(s.name), bursts,
                                             seed);
    const StreamStats raw_totals = raw.run(*raw_source);
    const StreamStats ac_totals = ac.run(*ac_source);
    const auto n = static_cast<double>(bursts);
    // --bursts 0 is a legal (if pointless) sweep: guard the 0/0 so the
    // table prints 0 instead of nan.
    const double bits = n * geometry.width() * geometry.burst_length();
    const auto saving = [&](const StreamStats& t) {
      return raw_totals.transitions > 0
                 ? 1.0 - static_cast<double>(t.transitions) /
                             static_cast<double>(raw_totals.transitions)
                 : 0.0;
    };
    std::vector<std::string> row = {
        std::string(s.name),
        sim::fmt(bits > 0 ? static_cast<double>(raw_totals.zeros) / bits
                          : 0.0,
                 4),
        sim::fmt(raw_totals.transitions_per_burst(), 2),
        sim::fmt(ac_totals.transitions_per_burst(), 2),
        sim::fmt(saving(ac_totals), 3)};
    if (sel) {
      auto sel_source = dbi::make_corpus_source(std::string(s.name), bursts,
                                                seed);
      const StreamStats sel_totals = sel->run(*sel_source);
      row.push_back(sim::fmt(sel_totals.transitions_per_burst(), 2));
      row.push_back(sim::fmt(saving(sel_totals), 3));
    }
    table.add_row(row);
  }
  emit(table, args);
  return 0;
}

// --- trace lake -------------------------------------------------------

/// `dbitool lake init|add|ls|verify`: build and inspect a trace lake —
/// a directory of binary traces plus the validated catalog.dbil that
/// `dbitool sweep LAKE_DIR` and the lake replay path stream from.
int cmd_lake(const Args& args) {
  if (args.positional.empty())
    throw UsageError(
        "lake: expected a subcommand "
        "(init DIR | add DIR FILE... | ls DIR [--json] | verify DIR)");
  const std::string& sub = args.positional[0];

  if (sub == "init") {
    if (args.positional.size() != 2)
      throw UsageError("lake init: expected exactly one DIR");
    lake::LakeWriter writer = lake::LakeWriter::create(args.positional[1]);
    writer.write();
    std::cerr << "initialised empty lake at " << writer.dir() << "\n";
    return 0;
  }

  if (sub == "add") {
    if (args.positional.size() < 3)
      throw UsageError("lake add: expected DIR FILE...");
    std::string dir = args.positional[1];
    while (dir.size() > 1 && dir.back() == '/') dir.pop_back();
    lake::LakeWriter writer = lake::LakeWriter::append(dir);
    for (std::size_t i = 2; i < args.positional.size(); ++i) {
      // Accept either the path as typed ("lakedir/t.dbt") or a name
      // relative to the lake directory ("t.dbt").
      std::string rel = args.positional[i];
      if (rel.rfind(dir + "/", 0) == 0) rel = rel.substr(dir.size() + 1);
      const lake::LakeMember& m = writer.add(rel);
      std::cerr << "added " << m.name << " (" << m.geometry().to_string()
                << ", " << m.stats.bursts << " bursts"
                << (m.encoded() ? ", encoded" : "") << ")\n";
    }
    writer.write();
    std::cerr << "catalog: " << writer.members().size() << " members\n";
    return 0;
  }

  if (sub == "ls") {
    if (args.positional.size() != 2)
      throw UsageError("lake ls: expected exactly one DIR");
    const lake::LakeReader reader = lake::LakeReader::open(args.positional[1]);
    if (args.options.count("json") != 0) {
      const auto esc = [](std::string_view s) {
        std::string out;
        for (const char c : s) {
          if (c == '"' || c == '\\') out += '\\';
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
            continue;
          }
          out += c;
        }
        return out;
      };
      std::ostringstream os;
      os << "{\n"
         << "  \"dir\": \"" << esc(reader.dir()) << "\",\n"
         << "  \"members\": " << reader.members().size() << ",\n"
         << "  \"total_bursts\": " << reader.total_bursts() << ",\n"
         << "  \"total_file_bytes\": " << reader.total_file_bytes() << ",\n"
         << "  \"entries\": [";
      for (std::size_t i = 0; i < reader.members().size(); ++i) {
        const lake::LakeMember& m = reader.members()[i];
        os << (i ? ",\n    " : "\n    ") << "{\"name\": \"" << esc(m.name)
           << "\", \"geometry\": \"" << esc(m.geometry().to_string())
           << "\", \"version\": " << static_cast<int>(m.trace_version)
           << ", \"encoded\": " << (m.encoded() ? "true" : "false")
           << ", \"bursts\": " << m.stats.bursts
           << ", \"chunks\": " << m.chunk_count
           << ", \"file_bytes\": " << m.file_bytes << "}";
      }
      os << (reader.members().empty() ? "]\n" : "\n  ]\n") << "}\n";
      std::cout << os.str();
      return 0;
    }
    sim::Table table({"member", "geometry", "v", "encoded", "bursts",
                      "chunks", "file_bytes"});
    for (const lake::LakeMember& m : reader.members())
      table.add_row({m.name, m.geometry().to_string(),
                     std::to_string(static_cast<int>(m.trace_version)),
                     m.encoded() ? (m.mixed() ? "mixed" : "yes") : "no",
                     std::to_string(m.stats.bursts),
                     std::to_string(m.chunk_count),
                     std::to_string(m.file_bytes)});
    emit(table, args);
    std::cerr << reader.members().size() << " members, "
              << reader.total_bursts() << " bursts, "
              << reader.total_file_bytes() << " bytes\n";
    return 0;
  }

  if (sub == "verify") {
    if (args.positional.size() != 2)
      throw UsageError("lake verify: expected exactly one DIR");
    const lake::LakeReader reader = lake::LakeReader::open(args.positional[1]);
    reader.verify_members();
    std::cerr << "verified " << reader.members().size() << " members ("
              << reader.total_bursts() << " bursts): catalog and every "
              << "member trace check out\n";
    return 0;
  }

  throw UsageError("lake: unknown subcommand '" + sub +
                   "' (init|add|ls|verify)");
}

// --- serving (dbid daemon + client) ----------------------------------

serve::ServerOptions server_options(const Args& args) {
  serve::ServerOptions options;
  options.socket_path = args.get("socket", "");
  if (options.socket_path.empty())
    throw UsageError("serve: --socket PATH is required");
  const long workers = args.get_long("workers", 0);
  const long queue = args.get_long("queue", 64);
  const long batch = args.get_long("batch", 8192);
  if (workers < 0 || queue < 0 || batch < 0)
    throw UsageError("serve: --workers/--queue/--batch must be >= 0");
  options.workers = static_cast<int>(workers);
  options.max_queue_requests = static_cast<std::size_t>(queue);
  options.quantum_bursts = args.get_long("quantum", 2048);
  options.max_batch_bursts = static_cast<std::size_t>(batch);
  options.validate();
  return options;
}

int cmd_serve(const Args& args) {
  const serve::ServerOptions options = server_options(args);
  const std::string pidfile = args.get("pidfile", "");
  if (args.options.count("fork") == 0) {
    if (!pidfile.empty()) {
      std::ofstream os(pidfile);
      if (!os) throw std::runtime_error("cannot write " + pidfile);
      os << ::getpid() << "\n";
    }
    std::cerr << "dbid (" << build_version() << ") listening on "
              << options.socket_path << "\n";
    return serve::run_daemon(options);
  }

  // --fork: daemonize with a readiness handshake — the parent only
  // exits 0 once the child has the socket bound, so scripts can
  // connect immediately after.
  int ready[2];
  if (::pipe(ready) != 0)
    throw std::system_error(errno, std::generic_category(), "serve: pipe");
  const pid_t pid = ::fork();
  if (pid < 0)
    throw std::system_error(errno, std::generic_category(), "serve: fork");
  if (pid == 0) {
    ::close(ready[0]);
    ::setsid();
    // Detach stdio: the daemon must not hold the invoker's pipes open
    // (a capturing caller would otherwise never see EOF after the
    // parent exits).
    const int null_fd = ::open("/dev/null", O_RDWR);
    if (null_fd >= 0) {
      ::dup2(null_fd, STDIN_FILENO);
      ::dup2(null_fd, STDOUT_FILENO);
      ::dup2(null_fd, STDERR_FILENO);
      if (null_fd > STDERR_FILENO) ::close(null_fd);
    }
    int rc = 1;
    try {
      rc = serve::run_daemon(options, ready[1]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "dbid: %s\n", e.what());
    }
    std::_Exit(rc);
  }
  ::close(ready[1]);
  // Status byte 0 = socket bound; 1 = startup failed, and the rest of
  // the pipe (until the child's exit closes it) is the reason — the
  // child's stderr points at /dev/null by then, so this is the only
  // way the actual bind error reaches the invoker.
  char status_byte = 0;
  ssize_t n;
  do {
    n = ::read(ready[0], &status_byte, 1);
  } while (n < 0 && errno == EINTR);
  if (n != 1 || status_byte != 0) {
    std::string reason;
    if (n == 1) {
      char buf[512];
      ssize_t m;
      while ((m = ::read(ready[0], buf, sizeof(buf))) > 0 ||
             (m < 0 && errno == EINTR)) {
        if (m > 0) reason.append(buf, static_cast<std::size_t>(m));
      }
    }
    ::close(ready[0]);
    int status = 0;
    ::waitpid(pid, &status, 0);
    throw std::runtime_error(
        reason.empty() ? "serve: daemon failed to start"
                       : "serve: daemon failed to start: " + reason);
  }
  ::close(ready[0]);
  if (!pidfile.empty()) {
    std::ofstream os(pidfile);
    if (!os) throw std::runtime_error("cannot write " + pidfile);
    os << pid << "\n";
  }
  std::cout << pid << "\n";
  std::cerr << "dbid forked (pid " << pid << ") on " << options.socket_path
            << "\n";
  return 0;
}

/// Shared by the client data modes: per-request wall-clock latencies,
/// summarised as p50/p99.
struct LatencyTracker {
  std::vector<std::uint64_t> ns;

  void add(std::chrono::steady_clock::time_point since) {
    ns.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - since)
            .count()));
  }
  [[nodiscard]] double quantile(double q) {
    if (ns.empty()) return 0;
    std::sort(ns.begin(), ns.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(ns.size() - 1) + 0.5);
    return static_cast<double>(ns[idx]) / 1e3;  // us
  }
};

[[noreturn]] void throw_busy(std::uint32_t limit) {
  throw TempFailError("server busy (per-tenant queue of " +
                      std::to_string(limit) +
                      " requests is full; retry later)");
}

int client_data(const Args& args, const std::string& socket) {
  const Geometry geometry = parse_geometry(args);
  const long total_bursts = args.get_long("bursts", 1000);
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  const long req_bursts = args.get_long("req-bursts", 1024);
  if (req_bursts < 1)
    throw UsageError("client: --req-bursts must be >= 1");
  const bool do_verify = args.options.count("verify") != 0;
  const Scheme scheme = parse_scheme(args.get("scheme", "ac"));
  const int lanes = static_cast<int>(args.get_long("lanes", 1));
  const bool reset = args.options.count("reset") != 0;
  const std::string out = args.get("output", "");
  if (do_verify && !out.empty())
    throw UsageError("client: -o only applies to the encode mode");

  serve::Client::Options copt;
  copt.socket_path = socket;
  copt.tenant = args.get("tenant", "cli");
  copt.scheme = scheme;
  copt.geometry = geometry;
  copt.lanes = lanes;
  copt.reset_state_per_burst = reset;
  copt.kernel = args.get("kernel", "");
  if (!copt.kernel.empty() && copt.kernel != "auto" &&
      engine::find_kernel(copt.kernel) == nullptr)
    throw UsageError("unknown kernel '" + copt.kernel +
                     "' (candidates: " + engine::kernel_candidates() + ")");
  auto client = serve::Client::connect(copt);

  // Same corpus / generator wiring as `record`, so the offline and
  // served streams are burst-identical for one (scenario, seed).
  std::unique_ptr<Source> source;
  std::string source_name;
  const BusConfig generator_cfg =
      geometry.is_wide() ? BusConfig{8, geometry.burst_length()}
                         : geometry.bus();
  if (args.options.count("corpus")) {
    source_name = args.get("corpus", "");
    source = dbi::make_corpus_source(source_name, total_bursts, seed);
  } else {
    auto generator =
        make_source(args.get("source", "uniform"), generator_cfg, seed, args);
    source_name = std::string(generator->name());
    source = dbi::make_generator_source(std::move(generator), total_bursts);
  }
  source->bind(geometry);

  // Encode mode with -o: write the same encoded trace `record
  // --encode` would — masks from the daemon, wire bytes applied
  // locally (the involution kernels), header metadata identical.
  std::unique_ptr<trace::TraceWriter> writer;
  engine::BatchDecoder applier;
  if (!out.empty()) {
    trace::TraceWriterOptions wopt = writer_options(args);
    wopt.encoded = true;
    wopt.enc_scheme = scheme_to_tag(scheme);
    wopt.enc_lanes = static_cast<std::uint16_t>(lanes);
    wopt.enc_policy = reset ? 1 : 0;
    if (geometry.is_wide())
      writer = std::make_unique<trace::TraceWriter>(out, geometry.wide_bus(),
                                                    wopt);
    else
      writer = std::make_unique<trace::TraceWriter>(out, geometry.bus(), wopt);
  }

  const auto bpb = static_cast<std::size_t>(geometry.bytes_per_burst());
  LatencyTracker latency;
  std::vector<std::uint8_t> tx;
  std::uint64_t zeros = 0, transitions = 0, mismatched = 0;
  std::int64_t bursts_done = 0;
  bool all_ok = true;
  while (auto chunk = source->next()) {
    std::int64_t off = 0;
    while (off < chunk->bursts) {
      const auto n = std::min<std::int64_t>(req_bursts, chunk->bursts - off);
      const std::span<const std::uint8_t> slice = chunk->bytes.subspan(
          static_cast<std::size_t>(off) * bpb, static_cast<std::size_t>(n) * bpb);
      const auto t0 = std::chrono::steady_clock::now();
      if (do_verify) {
        const auto r =
            client.verify(slice, static_cast<std::uint32_t>(n));
        if (r.outcome == serve::Client::Outcome::kBusy)
          throw_busy(client.max_queue_requests());
        latency.add(t0);
        zeros += r.ack.zeros;
        transitions += r.ack.transitions;
        mismatched += r.ack.mismatched_bytes;
        all_ok = all_ok && r.ack.ok;
      } else {
        const auto r = client.encode(slice, static_cast<std::uint32_t>(n));
        if (r.outcome == serve::Client::Outcome::kBusy)
          throw_busy(client.max_queue_requests());
        latency.add(t0);
        zeros += r.ack.zeros;
        transitions += r.ack.transitions;
        if (writer) {
          tx.resize(slice.size());
          if (geometry.is_wide())
            applier.apply_packed_wide(slice, r.ack.masks, geometry.wide_bus(),
                                      tx);
          else
            applier.apply_packed(slice, r.ack.masks, geometry.bus(), tx);
          writer->write_encoded(tx, r.ack.masks);
        }
      }
      bursts_done += n;
      off += n;
    }
  }
  if (writer) writer->finish();

  std::cerr << (do_verify ? "verified " : "encoded ") << bursts_done << " "
            << geometry.to_string() << " bursts (" << source_name
            << ") via dbid " << client.server_build() << " as tenant '"
            << copt.tenant << "'\n"
            << "  zeros " << zeros << "  transitions " << transitions
            << "  request p50 " << latency.quantile(0.5) << " us  p99 "
            << latency.quantile(0.99) << " us\n";
  if (writer) std::cerr << "  encoded trace written to " << out << "\n";
  if (do_verify) {
    std::cerr << "  round trip "
              << (all_ok ? "bit-exact"
                         : "MISMATCHED (" + std::to_string(mismatched) +
                               " bytes)")
              << "\n";
    return all_ok ? 0 : 1;
  }
  return 0;
}

int client_decode(const Args& args, const std::string& socket) {
  if (args.positional.empty())
    throw UsageError("client: --decode expects an ENCODED.dbt argument");
  const auto reader = trace::TraceReader::open(args.positional[0]);
  if (!reader.encoded())
    throw std::runtime_error("client: " + args.positional[0] +
                             " carries no mask stream");
  const std::string out = args.get("output", "");
  if (out.empty())
    throw std::runtime_error("client: --decode requires -o OUTPUT.dbt");
  const Geometry geometry = reader.wide()
                                ? Geometry::of(reader.header().wide_config())
                                : Geometry::of(reader.config());
  const long req_bursts = args.get_long("req-bursts", 1024);
  if (req_bursts < 1)
    throw UsageError("client: --req-bursts must be >= 1");

  serve::Client::Options copt;
  copt.socket_path = socket;
  copt.tenant = args.get("tenant", "cli");
  copt.geometry = geometry;
  copt.kernel = args.get("kernel", "");
  auto client = serve::Client::connect(copt);

  std::unique_ptr<trace::TraceWriter> writer;
  if (geometry.is_wide())
    writer = std::make_unique<trace::TraceWriter>(out, geometry.wide_bus(),
                                                  writer_options(args));
  else
    writer = std::make_unique<trace::TraceWriter>(out, geometry.bus(),
                                                  writer_options(args));

  auto source = make_trace_source(reader);
  source->bind(geometry);
  const auto bpb = static_cast<std::size_t>(geometry.bytes_per_burst());
  const auto groups = static_cast<std::size_t>(geometry.groups());
  LatencyTracker latency;
  std::int64_t bursts_done = 0;
  while (auto chunk = source->next()) {
    std::int64_t off = 0;
    while (off < chunk->bursts) {
      const auto n = std::min<std::int64_t>(req_bursts, chunk->bursts - off);
      const auto tx = chunk->bytes.subspan(
          static_cast<std::size_t>(off) * bpb, static_cast<std::size_t>(n) * bpb);
      const auto masks = chunk->masks.subspan(
          static_cast<std::size_t>(off) * groups,
          static_cast<std::size_t>(n) * groups);
      const auto t0 = std::chrono::steady_clock::now();
      const auto r =
          client.decode(tx, masks, static_cast<std::uint32_t>(n));
      if (r.outcome == serve::Client::Outcome::kBusy)
        throw_busy(client.max_queue_requests());
      latency.add(t0);
      writer->write_packed(r.payload);
      bursts_done += n;
      off += n;
    }
  }
  writer->finish();
  std::cerr << "decoded " << bursts_done << " " << geometry.to_string()
            << " bursts via dbid " << client.server_build() << " to " << out
            << "\n"
            << "  request p50 " << latency.quantile(0.5) << " us  p99 "
            << latency.quantile(0.99) << " us\n";
  return 0;
}

int cmd_client(const Args& args) {
  const std::string socket = args.get("socket", "");
  if (socket.empty()) throw UsageError("client: --socket PATH is required");
  if (args.options.count("stats") != 0) {
    auto client = serve::Client::connect_control(socket);
    std::cout << client.stats();
    return 0;
  }
  if (args.options.count("shutdown") != 0) {
    auto client = serve::Client::connect_control(socket);
    client.shutdown_server();
    std::cerr << "dbid acknowledged shutdown (draining)\n";
    return 0;
  }
  if (args.options.count("decode") != 0) return client_decode(args, socket);
  return client_data(args, socket);
}

int usage() {
  std::cerr <<
      "dbitool — optimal DC/AC data bus inversion toolkit\n"
      "\n"
      "usage:\n"
      "  dbitool gen     --source KIND --bursts N --seed S [--width 8]\n"
      "                  [--bl 8] [-o trace.txt]\n"
      "          KIND: uniform|biased|sparse|counter|gray|walking-ones|\n"
      "                text|float|markov|framebuffer|tensor\n"
      "  dbitool stats   TRACE [--csv]   (burst trace: payload stats;\n"
      "                  a --metrics JSON snapshot: metric table)\n"
      "  dbitool encode  TRACE [--scheme raw|dc|ac|acdc|opt|opt-fixed]\n"
      "                  [--alpha 0.5] [--csv]\n"
      "  dbitool sweep   TRACE [--steps 21] [--csv]        (Fig. 3/4)\n"
      "  dbitool sweep   LAKE_DIR [--schemes raw,ac,...] [--alpha 0.5]\n"
      "                  [--select exact[:LIST]|predict[:LIST]\n"
      "                  [--cost MODEL]] [--lanes 1] [--workers N]\n"
      "                  [--pod pod135 [--cload-pf 3] [--gbps 12]]\n"
      "                  [--cells DIR] [-o report.json]  (campaign\n"
      "                  runner: every policy arm x every lake member,\n"
      "                  streamed out of the lake; deterministic JSON,\n"
      "                  resumable per cell via --cells)\n"
      "  dbitool rates   TRACE [--pod pod135|pod12|pod15]\n"
      "                  [--cload-pf 3] [--from-gbps 1] [--to-gbps 20]\n"
      "                  [--step-gbps 1] [--csv]           (Fig. 7)\n"
      "  dbitool synth   [--bytes 8] [--bursts 1000] [--csv] (Table I)\n"
      "  dbitool pareto  [B0 B1 ... B7]  (hex bytes; default: Fig. 2)\n"
      "  dbitool faults  [--sites 300] [--bursts-per-fault 24] [--csv]\n"
      "  dbitool verilog [--design dc|ac|opt-fixed|opt-3bit|decoder]\n"
      "                  [-o out.v]\n"
      "  dbitool record  (--corpus SCENARIO | --source KIND) --bursts N\n"
      "                  [--seed S] [--width 8] [--bl 8] [--chunk 4096]\n"
      "                  [--no-compress] [--wide] -o trace.dbt (binary v2;\n"
      "                  --wide or --width > 32 records a multi-group\n"
      "                  trace, one DBI line per byte group, width <= 64)\n"
      "                  [--encode SCHEME [--lanes N] [--reset]\n"
      "                  [--alpha 0.5]] records an ENCODED trace: the\n"
      "                  transmitted stream + per-burst DBI mask chunks;\n"
      "                  [--select exact[:dc,ac,...]|predict[:dc,ac,...]\n"
      "                  [--cost transitions|energy|bytes]] instead picks\n"
      "                  the scheme adaptively per chunk (mixed-block\n"
      "                  coding) and records a format-v3 trace whose\n"
      "                  chunks carry their own scheme tags\n"
      "  dbitool decode  ENCODED.dbt -o payload.dbt [--workers N]\n"
      "                  [--chunk 4096] [--no-compress]  (recover the\n"
      "                  payload of an encoded trace at engine speed)\n"
      "  dbitool verify  TRACE.dbt [--scheme SCHEME] [--alpha 0.5]\n"
      "                  [--lanes N] [--reset] [--workers N] [--csv]\n"
      "                  (payload trace: encode->decode round trip must\n"
      "                  be bit-exact; encoded trace: decode->re-encode\n"
      "                  must reproduce the stored masks. exit 1 on\n"
      "                  mismatch)\n"
      "  dbitool replay  TRACE.dbt [--scheme SCHEME] [--alpha 0.5]\n"
      "                  [--lanes 4] [--workers N] [--no-double-buffer]\n"
      "                  [--pod pod135] [--cload-pf 3] [--gbps 12]\n"
      "                  [--kernel auto|swar|avx2-fixed8|...] [--csv]\n"
      "                  [--select exact[:LIST]|predict[:LIST]\n"
      "                  [--cost MODEL]] (adaptive mixed-block row\n"
      "                  instead of the fixed-scheme sweep)\n"
      "                  (wide traces shard per lane x byte group)\n"
      "          record / replay / decode also take [--report FILE]\n"
      "                  (unified session report JSON: policy, kernel\n"
      "                  routing, adaptive selection outcome, metrics)\n"
      "          record / replay / decode / verify also take\n"
      "                  [--metrics FILE] (metrics snapshot: Prometheus\n"
      "                  text if FILE ends in .prom, JSON otherwise;\n"
      "                  render with `dbitool stats FILE`) and\n"
      "                  [--trace-json FILE] (Chrome trace_event spans,\n"
      "                  open in Perfetto / chrome://tracing)\n"
      "  dbitool kernels [--csv]   (compiled-in kernel variants: ISA,\n"
      "                  availability on this host, auto selection; the\n"
      "                  DBI_KERNEL env var overrides auto, --kernel on\n"
      "                  replay/record pins a session)\n"
      "  dbitool inspect TRACE.dbt [--csv] [--json]  (--json prints\n"
      "                  machine-readable metadata on stdout)\n"
      "  dbitool convert INPUT OUTPUT [--chunk 4096] [--no-compress]\n"
      "                  (text <-> binary, direction by sniffing INPUT;\n"
      "                  wide traces are binary-only)\n"
      "  dbitool lake    init DIR             (empty catalog.dbil)\n"
      "  dbitool lake    add DIR FILE...      (validate + index traces;\n"
      "                  FILE may be DIR/name.dbt or a name inside DIR)\n"
      "  dbitool lake    ls DIR [--json] [--csv]  (catalog listing)\n"
      "  dbitool lake    verify DIR  (deep check: every member re-read\n"
      "                  through the full trace parser, CRC included;\n"
      "                  exit 1 on a stale or corrupt lake)\n"
      "  dbitool corpus  [--csv]   (list recordable scenarios)\n"
      "  dbitool corpus  --width 32 [--bl 8] [--bursts 4096] [--seed S]\n"
      "                  [--select exact[:LIST]|predict[:LIST]\n"
      "                  [--cost MODEL]] (sample every scenario at a wide\n"
      "                  geometry and report zero fraction + AC coding\n"
      "                  gain; --select adds the adaptive mixed-block\n"
      "                  column)\n"
      "  dbitool serve   --socket PATH [--workers N] [--queue N]\n"
      "                  [--quantum N] [--batch N] [--fork]\n"
      "                  [--pidfile FILE]  (run the dbid multi-tenant\n"
      "                  serving daemon; --fork daemonizes and exits 0\n"
      "                  once the socket is accepting)\n"
      "  dbitool client  --socket PATH [--tenant NAME] [--scheme SCHEME]\n"
      "                  [--width 8] [--bl 8] [--wide] [--lanes N]\n"
      "                  [--reset] [--kernel K]\n"
      "                  (--corpus SCENARIO | --source KIND) [--bursts N]\n"
      "                  [--seed S] [--req-bursts 1024] [--verify]\n"
      "                  [-o trace.dbt]  (stream bursts through the\n"
      "                  daemon; -o writes the same encoded trace\n"
      "                  `record --encode` would; --verify round-trips\n"
      "                  server-side and exits 1 on mismatch)\n"
      "  dbitool client  --socket PATH --decode ENCODED.dbt -o out.dbt\n"
      "                  [--req-bursts 1024]  (served payload recovery)\n"
      "  dbitool client  --socket PATH --stats     (Prometheus text)\n"
      "  dbitool client  --socket PATH --shutdown  (drain and exit)\n"
      "          a kBusy rejection (per-tenant queue full) exits 75\n"
      "                  (EX_TEMPFAIL) so scripts can retry\n"
      "  dbitool version | --version  (build identity, also in the\n"
      "                  serve hello ack and dbi_build_info metric)\n";
  return 2;
}

/// Unknown commands and unknown flags are a distinct failure from an
/// empty invocation: name the offender on stderr and exit 64
/// (EX_USAGE) instead of the bare-usage exit 2, so scripts can tell
/// typos from missing arguments.
int unknown_command(const std::string& command) {
  std::cerr << "dbitool: unknown command '" << command << "'\n\n";
  (void)usage();
  return 64;
}

int unknown_flag_error(const std::string& command, const std::string& flag) {
  std::cerr << "dbitool: unknown flag '--" << flag << "' for command '"
            << command << "'\n\n";
  (void)usage();
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.command.empty()) return usage();
    if (const std::string flag = unknown_flag(args); !flag.empty())
      return unknown_flag_error(args.command, flag);
    if (!args.missing_value_flag.empty())
      throw std::runtime_error("missing value for --" +
                               args.missing_value_flag);
    if (args.command == "gen") return cmd_gen(args);
    if (args.command == "stats") return cmd_stats(args);
    if (args.command == "encode") return cmd_encode(args);
    if (args.command == "sweep") return cmd_sweep(args);
    if (args.command == "rates") return cmd_rates(args);
    if (args.command == "synth") return cmd_synth(args);
    if (args.command == "pareto") return cmd_pareto(args);
    if (args.command == "faults") return cmd_faults(args);
    if (args.command == "verilog") return cmd_verilog(args);
    if (args.command == "record") return cmd_record(args);
    if (args.command == "replay") return cmd_replay(args);
    if (args.command == "inspect") return cmd_inspect(args);
    if (args.command == "convert") return cmd_convert(args);
    if (args.command == "corpus") return cmd_corpus(args);
    if (args.command == "lake") return cmd_lake(args);
    if (args.command == "decode") return cmd_decode(args);
    if (args.command == "verify") return cmd_verify(args);
    if (args.command == "kernels") return cmd_kernels(args);
    if (args.command == "serve") return cmd_serve(args);
    if (args.command == "client") return cmd_client(args);
    if (args.command == "version" || args.command == "--version") {
      std::cout << dbi::build_info() << "\n";
      return 0;
    }
    if (args.command == "help" || args.command == "--help" ||
        args.command == "-h") {
      (void)usage();
      return 0;
    }
    return unknown_command(args.command);
  } catch (const UsageError& e) {
    std::cerr << "dbitool: " << e.what() << "\n\n";
    (void)usage();
    return 64;
  } catch (const TempFailError& e) {
    std::cerr << "dbitool: " << e.what() << "\n";
    return 75;
  } catch (const std::exception& e) {
    std::cerr << "dbitool: " << e.what() << "\n";
    return 1;
  }
}
