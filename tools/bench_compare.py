#!/usr/bin/env python3
"""Bench regression gate for the BENCH_*.json trajectory.

Compares the ratio metrics of a fresh bench run against the committed
baselines in bench/baselines/ and fails (exit 1) when any metric
regressed more than --tolerance (default 15%) below its baseline, or
when an acceptance-floor metric (wide-bus fixed-scheme speedups) drops
under its hard floor.

Only machine-relative RATIOS are gated — engine-vs-scalar speedups and
replay-vs-memory ratios — never absolute bursts/sec, so the gate is
stable across differently sized CI machines. The absolute numbers still
land in the trend artifact for human trajectory tracking.

Usage:
  python3 tools/bench_compare.py \
      --baseline-dir bench/baselines --current-dir . \
      [--tolerance 0.15] [--trend bench_trend.csv]

Most metrics are floors (higher is better). Metrics listed by
is_ceiling() are CEILINGS (lower is better, e.g. served tail-latency
amplification): for those the relative check inverts and ceiling_for()
supplies a hard cap instead of a floor.

Re-baselining after an intentional perf change:
  ./build/bench_engine_throughput 8192 8 4 > bench/baselines/bench_engine_throughput.json
  ./build/bench_trace_replay 131072 8 4 > bench/baselines/bench_trace_replay.json
  ./build/bench_serve > bench/baselines/bench_serve.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

FILES = ("bench_engine_throughput.json", "bench_trace_replay.json",
         "bench_serve.json")

# Acceptance floors (independent of the baseline): the wide multi-group
# kernels must stay >= 4x over the per-group scalar loop for the fixed
# schemes at the x32 and x64 geometries, the decode kernels >= 4x over
# the scalar EncodedBurst receive path at x8 and x64, and the
# dbi::Session facade may cost at most 2% throughput over the direct
# engine entry points.
FLOOR_SCHEMES = ("DBI DC", "DBI AC", "DBI ACDC")
FLOOR_WIDTHS = (32, 64)
FLOOR_SPEEDUP = 4.0
DECODE_FLOOR_GEOMETRIES = ("x8", "wide_x64")
DECODE_FLOOR = 4.0
FACADE_FLOOR = 0.98
# Kernel-variant floors, vs the portable "swar" reference in the same
# process: the SIMD fixed-scheme encode kernels must earn their keep
# (>= 1.5x), and no variant the registry would auto-select may be
# slower than the portable reference on any path it serves (>= 1x).
# Variants whose ISA the bench machine lacks are reported as
# skipped-isa, never failed.
KERNEL_ENCODE_FLOOR = 1.5
KERNEL_FLOOR = 1.0
# Observability: a kFull-instrumented replay (counters + stage spans at
# the default strides: per-chunk stages exact, per-unit stages sampled)
# may cost at most 2% throughput over the uninstrumented run.
OBS_FLOOR = 0.98
# Adaptive mixed-block selection, vs the fixed-scheme throughput floor
# (the slowest single-scheme row in the "select" section): exact mode
# encodes every candidate per block, so its budget is 1/len(candidates)
# of the floor (the candidate count is the cN suffix of the label);
# predicted mode encodes one candidate on non-probe blocks and must
# stay within 0.8x. Exact mode keeps the per-block minimum, so its
# energy-saved ratio vs the best fixed candidate can never sit below
# 1.0 (0.999 allows float rounding in the report).
SELECT_PREDICTED_FLOOR = 0.8
SELECT_EXACT_ENERGY_FLOOR = 0.999
# Trace-lake replay: streaming every member of a three-file catalog
# through replay_lake must recover at least 0.9x of the summed
# per-file replay throughput (the catalog walk, per-member session
# setup and the deterministic merge may cost at most 10%). The
# readahead on-vs-off ratio is baseline-gated only — no hard floor,
# because a warm page cache legitimately flattens it to ~1.0.
LAKE_REPLAY_FLOOR = 0.9
# Serving daemon: aggregate served throughput at 8 pipelined tenants
# must reach 0.7x the single-stream engine pass (protocol, scheduling
# and per-tenant state may cost at most 30%).
SERVE_FLOOR = 0.7
# Tail-latency amplification at 8 tenants is a CEILING metric — lower
# is better — with a generous hard cap as the genuine-pathology
# tripwire (DRR keeps per-request waits to one round of quanta, so a
# blow-up here means fairness broke, not that the machine is slow).
SERVE_P99_AMPLIFICATION_CEILING = 64.0


def extract_metrics(name: str, doc: dict) -> dict[str, float]:
    """Flattens one bench JSON into {metric_name: ratio} pairs."""
    metrics: dict[str, float] = {}
    if name == "bench_engine_throughput.json":
        for row in doc.get("schemes", []):
            metrics[f"engine_speedup/{row['scheme']}"] = row["speedup"]
        for row in doc.get("wide", []):
            metrics[f"wide_speedup/x{row['width']}/{row['scheme']}"] = (
                row["speedup"]
            )
        for row in doc.get("facade", []):
            metrics[f"facade_overhead/{row['case']}"] = (
                row["session_vs_engine"]
            )
        for row in doc.get("decode", []):
            metrics[f"decode_vs_scalar/{row['geometry']}/{row['scheme']}"] = (
                row["decode_vs_scalar"]
            )
        for row in doc.get("kernels", []):
            if row["kernel"] == "swar" or not row["available"]:
                continue  # the reference itself / ISA absent on this host
            for path in ("encode_x8", "encode_wide_x64", "decode_x8",
                         "decode_wide_x64"):
                metrics[f"kernel_vs_swar/{row['kernel']}/{path}"] = (
                    row[f"{path}_vs_swar"]
                )
        for row in doc.get("select", []):
            if row["mode"] == "fixed":
                continue  # absolute rows, trend-only
            metrics[f"select_vs_fixed/{row['label']}"] = row["vs_fixed_floor"]
            metrics[f"select_energy_saved/{row['label']}"] = (
                row["energy_saved_ratio"]
            )
    elif name == "bench_serve.json":
        for row in doc.get("rows", []):
            tenants = row["tenants"]
            metrics[f"serve_vs_session/{tenants}t"] = row["serve_vs_session"]
            if "p99_amplification" in row:
                metrics[f"serve_p99_amplification/{tenants}t"] = (
                    row["p99_amplification"]
                )
    elif name == "bench_trace_replay.json":
        for row in doc.get("schemes", []):
            metrics[f"replay_vs_stream/{row['scheme']}"] = (
                row["replay_vs_stream"]
            )
        wide = doc.get("wide")
        if wide:
            metrics[f"wide_replay_vs_memory/x{wide['width']}"] = (
                wide["replay_vs_memory"]
            )
        obs = doc.get("obs")
        if obs:
            metrics["obs_overhead"] = obs["obs_vs_off"]
        lake = doc.get("lake")
        if lake:
            metrics["lake_replay_vs_per_file"] = lake["lake_vs_per_file"]
            metrics["lake_readahead_on_vs_off"] = (
                lake["readahead_on_vs_off"]
            )
    return metrics


def floor_for(metric: str) -> float | None:
    if metric.startswith("facade_overhead/"):
        return FACADE_FLOOR
    for width in FLOOR_WIDTHS:
        for scheme in FLOOR_SCHEMES:
            if metric == f"wide_speedup/x{width}/{scheme}":
                return FLOOR_SPEEDUP
    for geometry in DECODE_FLOOR_GEOMETRIES:
        for scheme in FLOOR_SCHEMES:
            if metric == f"decode_vs_scalar/{geometry}/{scheme}":
                return DECODE_FLOOR
    if metric.startswith("kernel_vs_swar/"):
        if "/encode_" in metric and "/avx" in metric:
            return KERNEL_ENCODE_FLOOR
        return KERNEL_FLOOR
    if metric == "obs_overhead":
        return OBS_FLOOR
    if metric.startswith("select_vs_fixed/exact/c"):
        return 1.0 / int(metric.rsplit("/c", 1)[1])
    if metric.startswith("select_vs_fixed/predicted/"):
        return SELECT_PREDICTED_FLOOR
    if metric.startswith("select_energy_saved/exact/"):
        return SELECT_EXACT_ENERGY_FLOOR
    if metric == "serve_vs_session/8t":
        return SERVE_FLOOR
    if metric == "lake_replay_vs_per_file":
        return LAKE_REPLAY_FLOOR
    return None


def is_ceiling(metric: str) -> bool:
    """Ceiling metrics are lower-is-better: the relative check inverts
    (current may not rise more than --tolerance above baseline) and
    ceiling_for() supplies the hard cap."""
    return metric.startswith("serve_p99_amplification/")


def ceiling_for(metric: str) -> float | None:
    if metric.startswith("serve_p99_amplification/"):
        return SERVE_P99_AMPLIFICATION_CEILING
    return None


def skipped_kernels(doc: dict) -> set[str]:
    """Kernel variants the current machine cannot run (ISA absent)."""
    return {row["kernel"] for row in doc.get("kernels", [])
            if not row["available"]}


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", required=True)
    parser.add_argument("--current-dir", required=True)
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional regression (default 0.15)")
    parser.add_argument("--trend", default=None,
                        help="write a CSV trend artifact here")
    args = parser.parse_args()

    failures: list[str] = []
    rows: list[tuple[str, str, float, float, str]] = []

    for name in FILES:
        baseline_path = os.path.join(args.baseline_dir, name)
        current_path = os.path.join(args.current_dir, name)
        if not os.path.exists(baseline_path):
            failures.append(f"{name}: missing baseline {baseline_path}")
            continue
        if not os.path.exists(current_path):
            failures.append(f"{name}: missing current run {current_path}")
            continue
        current_doc = load(current_path)
        baseline = extract_metrics(name, load(baseline_path))
        current = extract_metrics(name, current_doc)
        skipped = skipped_kernels(current_doc)

        for metric, base_value in sorted(baseline.items()):
            if metric not in current:
                if (metric.startswith("kernel_vs_swar/")
                        and metric.split("/")[1] in skipped):
                    # Baselined on a machine with the ISA, gated on one
                    # without it: documented skip, not a regression.
                    rows.append((name, metric, base_value, float("nan"),
                                 "skipped-isa"))
                    continue
                failures.append(
                    f"{metric}: present in baseline but missing from the "
                    f"current run (bench output shape changed?)")
                continue
            cur_value = current[metric]
            status = "ok"
            if is_ceiling(metric):
                # Lower is better: regression means rising above the
                # baseline allowance, failure means topping the cap.
                allowed = base_value * (1.0 + args.tolerance)
                if cur_value > allowed:
                    status = "REGRESSED"
                    failures.append(
                        f"{metric}: {cur_value:.3f} > {allowed:.3f} "
                        f"(baseline {base_value:.3f} + {args.tolerance:.0%},"
                        f" ceiling metric)")
                ceiling = ceiling_for(metric)
                if ceiling is not None and cur_value > ceiling:
                    status = "ABOVE-CEILING"
                    failures.append(
                        f"{metric}: {cur_value:.3f} above the hard "
                        f"acceptance ceiling {ceiling:.2f}")
            else:
                allowed = base_value * (1.0 - args.tolerance)
                if cur_value < allowed:
                    status = "REGRESSED"
                    failures.append(
                        f"{metric}: {cur_value:.3f} < {allowed:.3f} "
                        f"(baseline {base_value:.3f} - {args.tolerance:.0%})")
                floor = floor_for(metric)
                if floor is not None and cur_value < floor:
                    status = "BELOW-FLOOR"
                    failures.append(
                        f"{metric}: {cur_value:.3f} below the hard "
                        f"acceptance floor {floor:.2f}")
            rows.append((name, metric, base_value, cur_value, status))

        for metric in sorted(set(current) - set(baseline)):
            status = "new"
            floor = floor_for(metric)
            if floor is not None and current[metric] < floor:
                status = "BELOW-FLOOR"
                failures.append(
                    f"{metric}: {current[metric]:.3f} below the hard "
                    f"acceptance floor {floor:.2f} (new metric)")
            ceiling = ceiling_for(metric)
            if ceiling is not None and current[metric] > ceiling:
                status = "ABOVE-CEILING"
                failures.append(
                    f"{metric}: {current[metric]:.3f} above the hard "
                    f"acceptance ceiling {ceiling:.2f} (new metric)")
            rows.append((name, metric, float("nan"), current[metric], status))

    sha = os.environ.get("GITHUB_SHA", "local")
    if args.trend:
        with open(args.trend, "w", encoding="utf-8") as f:
            f.write("commit,bench,metric,baseline,current,status\n")
            for bench, metric, base, cur, status in rows:
                f.write(f"{sha},{bench},{metric},{base:.4f},{cur:.4f},"
                        f"{status}\n")

    width = max((len(r[1]) for r in rows), default=10)
    print(f"bench gate @ {sha} (tolerance {args.tolerance:.0%})")
    for bench, metric, base, cur, status in rows:
        print(f"  {metric:<{width}}  baseline {base:7.3f}  "
              f"current {cur:7.3f}  {status}")

    # When running under GitHub Actions, mirror the gate table into the
    # job summary so a red X explains itself without opening the log.
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        def cell(value: float) -> str:
            return "–" if value != value else f"{value:.3f}"  # NaN-safe

        with open(summary_path, "a", encoding="utf-8") as f:
            f.write(f"## Bench regression gate @ `{sha}` "
                    f"(tolerance {args.tolerance:.0%})\n\n")
            f.write("| metric | baseline | measured | status |\n")
            f.write("| --- | ---: | ---: | --- |\n")
            for _bench, metric, base, cur, status in rows:
                mark = status if status in ("ok", "new", "skipped-isa") \
                    else f"**{status}**"
                f.write(f"| `{metric}` | {cell(base)} | {cell(cur)} "
                        f"| {mark} |\n")
            if failures:
                f.write(f"\n**FAIL** — {len(failures)} metric(s) out of "
                        f"bounds:\n\n")
                for failure in failures:
                    f.write(f"- {failure}\n")
            else:
                f.write(f"\n**OK** — {len(rows)} metrics within "
                        f"tolerance.\n")

    if failures:
        print("\nFAIL: bench regression gate", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(rows)} metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
