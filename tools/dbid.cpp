// dbid — the standalone multi-tenant DBI serving daemon.
//
// Thin main over serve::run_daemon: bind a Unix-domain socket, serve
// framed encode/decode/verify/stats requests until SIGTERM/SIGINT or a
// client shutdown frame, then drain gracefully. `dbitool serve` wraps
// the same body with the rest of the CLI (including --fork); this
// binary exists so deployments can ship the daemon without the tooling.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "api/version.hpp"
#include "serve/server.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH [--workers N] [--queue N] [--quantum N]\n"
      "          [--batch N]\n"
      "\n"
      "  --socket PATH   Unix-domain socket to bind (required)\n"
      "  --workers N     shared ShardPool workers (default: serial)\n"
      "  --queue N       per-tenant admission bound, requests (default 64)\n"
      "  --quantum N     deficit-round-robin quantum, bursts (default 2048)\n"
      "  --batch N       coalescing cap, bursts per engine call "
      "(default 8192)\n"
      "  --version       print the build version and exit\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  dbi::serve::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      std::printf("%s\n", dbi::build_info().c_str());
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    }
    if (i + 1 >= argc) return usage(argv[0]);
    const std::string value = argv[++i];
    try {
      if (arg == "--socket") {
        options.socket_path = value;
      } else if (arg == "--workers" || arg == "--queue" || arg == "--batch") {
        const long n = std::stol(value);
        if (n < 0) throw std::invalid_argument("negative");
        if (arg == "--workers")
          options.workers = static_cast<int>(n);
        else if (arg == "--queue")
          options.max_queue_requests = static_cast<std::size_t>(n);
        else
          options.max_batch_bursts = static_cast<std::size_t>(n);
      } else if (arg == "--quantum") {
        options.quantum_bursts = std::stol(value);
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "dbid: bad value for %s: %s\n", arg.c_str(),
                   value.c_str());
      return 64;
    }
  }
  if (options.socket_path.empty()) return usage(argv[0]);

  try {
    return dbi::serve::run_daemon(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dbid: %s\n", e.what());
    return 1;
  }
}
